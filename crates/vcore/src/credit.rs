//! Credit accounting and host reputation.
//!
//! BOINC's volunteer incentive is *credit*, granted only for results
//! that participate in a validated quorum — the same mechanism §III.B
//! leans on for byzantine tolerance: a corrupted output never matches
//! the canonical fingerprint, so the cheater earns nothing, while the
//! agreeing replicas split the granted credit.
//!
//! The error-rate ledger mirrors BOINC's adaptive host punishment: a
//! host whose results keep failing validation sees its reliability
//! score decay, which real projects use to steer replication.

use crate::types::ClientId;
use std::collections::HashMap;
use vmr_durable::{Dec, Enc, Journal, StateChange, WireError};

/// Credit and reliability ledger for the volunteer population,
/// partitioned by `client_id % n` to match the server-core sharding.
///
/// Sharding is invisible in every observable: lookups route by id, and
/// all aggregate views (`encode_state`, `leaderboard`, `total_granted`,
/// `unreliable_hosts`) iterate in globally sorted order, so a sharded
/// ledger is byte-identical to the historical single-map one.
#[derive(Debug)]
pub struct CreditLedger {
    shards: Vec<HashMap<ClientId, HostAccount>>,
    /// WAL handle (disabled by default).
    journal: Journal,
}

impl Default for CreditLedger {
    fn default() -> Self {
        CreditLedger::with_shards(1)
    }
}

/// One volunteer's record.
#[derive(Debug, Clone, Default)]
pub struct HostAccount {
    /// Total granted credit (cobblestones).
    pub granted: f64,
    /// Results that validated (were part of a quorum).
    pub valid_results: u64,
    /// Successful-looking results that *failed* validation (dissenting
    /// fingerprints — byzantine or faulty hardware).
    pub invalid_results: u64,
    /// Client-side errors and deadline misses.
    pub errors: u64,
}

impl HostAccount {
    /// BOINC-style error rate estimate, biased optimistic for new hosts
    /// (starts at 0.1, decays with validated work, grows with failures).
    pub fn error_rate(&self) -> f64 {
        let total = (self.valid_results + self.invalid_results + self.errors) as f64;
        let bad = (self.invalid_results + self.errors) as f64;
        (bad + 0.1) / (total + 1.0)
    }

    /// Reliability = 1 − error rate.
    pub fn reliability(&self) -> f64 {
        1.0 - self.error_rate()
    }
}

/// Credit claimed for a task of `flops` floating-point operations, in
/// BOINC cobblestones (100 cobblestones ≈ 864 000 GFLOP-seconds of the
/// reference machine; we keep the historical formula's shape).
pub fn claimed_credit(flops: f64) -> f64 {
    flops / 1e9 * (100.0 / 864.0)
}

impl CreditLedger {
    /// An empty single-shard ledger.
    pub fn new() -> Self {
        CreditLedger::default()
    }

    /// An empty ledger partitioned into `n` shards (`n ≥ 1`).
    pub fn with_shards(n: usize) -> Self {
        let n = n.max(1);
        CreditLedger {
            shards: (0..n).map(|_| HashMap::new()).collect(),
            journal: Journal::disabled(),
        }
    }

    /// Number of account shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Repartitions the accounts into `n` shards (used after restoring
    /// a snapshot, which always decodes single-shard).
    pub fn reshard(&mut self, n: usize) {
        let n = n.max(1);
        if n == self.shards.len() {
            return;
        }
        let mut shards: Vec<HashMap<ClientId, HostAccount>> =
            (0..n).map(|_| HashMap::new()).collect();
        for shard in self.shards.drain(..) {
            for (c, a) in shard {
                shards[c.0 as usize % n].insert(c, a);
            }
        }
        self.shards = shards;
    }

    #[inline]
    fn shard_of(&self, c: ClientId) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            c.0 as usize % self.shards.len()
        }
    }

    /// Attaches the engine's WAL handle; subsequent grants and error
    /// marks append change records.
    pub fn set_journal(&mut self, journal: Journal) {
        self.journal = journal;
    }

    /// The account of `c` (created on first touch).
    pub fn account(&self, c: ClientId) -> HostAccount {
        self.shards[self.shard_of(c)]
            .get(&c)
            .cloned()
            .unwrap_or_default()
    }

    fn entry(&mut self, c: ClientId) -> &mut HostAccount {
        let s = self.shard_of(c);
        self.shards[s].entry(c).or_default()
    }

    /// All (client, account) pairs, unordered.
    fn iter(&self) -> impl Iterator<Item = (&ClientId, &HostAccount)> {
        self.shards.iter().flat_map(HashMap::iter)
    }

    /// A work unit validated: the agreeing replicas each receive the
    /// granted credit (BOINC grants the *same* amount to every member
    /// of the quorum — typically the median/min of the claims; with
    /// identical task sizes the claim itself).
    pub fn on_wu_validated(&mut self, agreeing: &[ClientId], dissenting: &[ClientId], flops: f64) {
        self.journal.append(&StateChange::CreditGranted {
            agreeing: agreeing.iter().map(|c| c.0).collect(),
            dissenting: dissenting.iter().map(|c| c.0).collect(),
            flops_bits: flops.to_bits(),
        });
        self.raw_on_wu_validated(agreeing, dissenting, flops);
    }

    /// An *unreplicated* work unit validated under the trust policy:
    /// the claimed credit is granted pro-rata to the host's reliability
    /// (`scale` in `[0, 1]`) — BOINC's coupling of credit to trust, so
    /// a host cannot earn full credit faster by skipping replication.
    pub fn on_wu_validated_scaled(
        &mut self,
        agreeing: &[ClientId],
        dissenting: &[ClientId],
        flops: f64,
        scale: f64,
    ) {
        self.journal.append(&StateChange::CreditGrantedScaled {
            agreeing: agreeing.iter().map(|c| c.0).collect(),
            dissenting: dissenting.iter().map(|c| c.0).collect(),
            flops_bits: flops.to_bits(),
            scale_bits: scale.to_bits(),
        });
        self.raw_on_wu_validated_scaled(agreeing, dissenting, flops, scale);
    }

    /// A result errored client-side or missed its deadline.
    pub fn on_error(&mut self, c: ClientId) {
        self.journal
            .append(&StateChange::CreditError { client: c.0 });
        self.entry(c).errors += 1;
    }

    fn raw_on_wu_validated(&mut self, agreeing: &[ClientId], dissenting: &[ClientId], flops: f64) {
        let grant = claimed_credit(flops);
        for &c in agreeing {
            let a = self.entry(c);
            a.granted += grant;
            a.valid_results += 1;
        }
        for &c in dissenting {
            let a = self.entry(c);
            a.invalid_results += 1;
        }
    }

    fn raw_on_wu_validated_scaled(
        &mut self,
        agreeing: &[ClientId],
        dissenting: &[ClientId],
        flops: f64,
        scale: f64,
    ) {
        let grant = claimed_credit(flops) * scale;
        for &c in agreeing {
            let a = self.entry(c);
            a.granted += grant;
            a.valid_results += 1;
        }
        for &c in dissenting {
            let a = self.entry(c);
            a.invalid_results += 1;
        }
    }

    /// Applies one replayed change record; `Ok(false)` when the record
    /// belongs to another subsystem.
    pub fn apply_change(&mut self, c: &StateChange) -> Result<bool, WireError> {
        match c {
            StateChange::CreditGranted {
                agreeing,
                dissenting,
                flops_bits,
            } => {
                let agreeing: Vec<ClientId> = agreeing.iter().copied().map(ClientId).collect();
                let dissenting: Vec<ClientId> = dissenting.iter().copied().map(ClientId).collect();
                self.raw_on_wu_validated(&agreeing, &dissenting, f64::from_bits(*flops_bits));
            }
            StateChange::CreditError { client } => {
                self.entry(ClientId(*client)).errors += 1;
            }
            StateChange::CreditGrantedScaled {
                agreeing,
                dissenting,
                flops_bits,
                scale_bits,
            } => {
                let agreeing: Vec<ClientId> = agreeing.iter().copied().map(ClientId).collect();
                let dissenting: Vec<ClientId> = dissenting.iter().copied().map(ClientId).collect();
                self.raw_on_wu_validated_scaled(
                    &agreeing,
                    &dissenting,
                    f64::from_bits(*flops_bits),
                    f64::from_bits(*scale_bits),
                );
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Canonical snapshot: accounts sorted by client id, credit as raw
    /// f64 bits, so equal ledgers encode to byte-identical vectors.
    pub fn encode_state(&self) -> Vec<u8> {
        let mut ids: Vec<ClientId> = self.iter().map(|(&c, _)| c).collect();
        ids.sort_unstable();
        let mut e = Enc::with_capacity(16 + ids.len() * 40);
        e.u32(ids.len() as u32);
        for c in ids {
            let a = &self.shards[self.shard_of(c)][&c];
            e.u32(c.0);
            e.f64(a.granted);
            e.u64(a.valid_results);
            e.u64(a.invalid_results);
            e.u64(a.errors);
        }
        e.into_vec()
    }

    /// Rebuilds a ledger from an [`CreditLedger::encode_state`]
    /// snapshot section. The journal handle starts disabled.
    pub fn decode_state(b: &[u8]) -> Result<CreditLedger, WireError> {
        let mut d = Dec::new(b);
        let n = d.u32()? as usize;
        let mut accounts = HashMap::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let c = ClientId(d.u32()?);
            accounts.insert(
                c,
                HostAccount {
                    granted: d.f64()?,
                    valid_results: d.u64()?,
                    invalid_results: d.u64()?,
                    errors: d.u64()?,
                },
            );
        }
        d.finish()?;
        Ok(CreditLedger {
            shards: vec![accounts],
            journal: Journal::disabled(),
        })
    }

    /// Total credit granted across all hosts. Summed in sorted client
    /// order so the f64 accumulation is shard-count-invariant.
    pub fn total_granted(&self) -> f64 {
        let mut v: Vec<(ClientId, f64)> = self.iter().map(|(&c, a)| (c, a.granted)).collect();
        v.sort_unstable_by_key(|&(c, _)| c);
        v.into_iter().map(|(_, g)| g).sum()
    }

    /// Hosts ordered by granted credit, descending (the leaderboard
    /// every BOINC project publishes).
    pub fn leaderboard(&self) -> Vec<(ClientId, f64)> {
        let mut v: Vec<(ClientId, f64)> = self.iter().map(|(&c, a)| (c, a.granted)).collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        v
    }

    /// Hosts whose error rate exceeds `threshold` (candidates for
    /// increased replication / quarantine).
    pub fn unreliable_hosts(&self, threshold: f64) -> Vec<ClientId> {
        let mut v: Vec<ClientId> = self
            .iter()
            .filter(|(_, a)| a.error_rate() > threshold)
            .map(|(&c, _)| c)
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_members_split_nothing_they_each_get_full_grant() {
        let mut l = CreditLedger::new();
        l.on_wu_validated(&[ClientId(0), ClientId(1)], &[], 864e9);
        let a0 = l.account(ClientId(0));
        let a1 = l.account(ClientId(1));
        assert!((a0.granted - 100.0).abs() < 1e-9, "{}", a0.granted);
        assert_eq!(a0.granted, a1.granted);
        assert_eq!(a0.valid_results, 1);
        assert!((l.total_granted() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn dissenters_earn_nothing_and_lose_reliability() {
        let mut l = CreditLedger::new();
        for _ in 0..10 {
            l.on_wu_validated(&[ClientId(0)], &[ClientId(7)], 1e9);
        }
        let honest = l.account(ClientId(0));
        let cheat = l.account(ClientId(7));
        assert_eq!(cheat.granted, 0.0);
        assert_eq!(cheat.invalid_results, 10);
        assert!(cheat.error_rate() > 0.9);
        assert!(honest.error_rate() < 0.05);
        assert_eq!(l.unreliable_hosts(0.5), vec![ClientId(7)]);
    }

    #[test]
    fn new_hosts_start_mildly_distrusted() {
        let a = HostAccount::default();
        assert!((a.error_rate() - 0.1).abs() < 1e-9);
        assert!((a.reliability() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn errors_count_against_reliability() {
        let mut l = CreditLedger::new();
        l.on_error(ClientId(3));
        l.on_error(ClientId(3));
        assert_eq!(l.account(ClientId(3)).errors, 2);
        assert!(l.account(ClientId(3)).error_rate() > 0.5);
    }

    #[test]
    fn leaderboard_sorted_desc() {
        let mut l = CreditLedger::new();
        l.on_wu_validated(&[ClientId(2)], &[], 5e9);
        l.on_wu_validated(&[ClientId(1)], &[], 9e9);
        l.on_wu_validated(&[ClientId(0)], &[], 1e9);
        let board = l.leaderboard();
        assert_eq!(board[0].0, ClientId(1));
        assert_eq!(board[2].0, ClientId(0));
        assert!(board[0].1 > board[1].1);
    }

    #[test]
    fn claimed_credit_is_linear_in_flops() {
        assert!((claimed_credit(2.0 * 864e9) - 200.0).abs() < 1e-9);
        assert_eq!(claimed_credit(0.0), 0.0);
    }

    #[test]
    fn scaled_grant_is_pro_rata() {
        let mut l = CreditLedger::new();
        l.on_wu_validated_scaled(&[ClientId(0)], &[], 864e9, 0.9);
        let a = l.account(ClientId(0));
        assert!((a.granted - 90.0).abs() < 1e-9, "{}", a.granted);
        assert_eq!(a.valid_results, 1);
    }

    #[test]
    fn wal_replay_reproduces_ledger_bit_for_bit() {
        use vmr_durable::{recover, DurabilityPlan};
        let j = Journal::new(&DurabilityPlan::new(0.0)).unwrap();
        let mut live = CreditLedger::new();
        live.set_journal(j.clone());
        // Irrational-ish flops so f64 accumulation order matters.
        live.on_wu_validated(&[ClientId(0), ClientId(2)], &[ClientId(5)], 1.1e9);
        live.on_wu_validated(&[ClientId(2)], &[], 0.3e9);
        live.on_error(ClientId(0));
        live.on_wu_validated_scaled(&[ClientId(2)], &[], 1.7e9, 0.987_654_321);
        live.on_wu_validated(&[ClientId(0)], &[ClientId(2)], 2.7e9);
        j.commit();
        let r = recover(&j.log_bytes()).unwrap();
        let mut replayed = CreditLedger::new();
        for c in &r.tail {
            assert!(replayed.apply_change(c).unwrap(), "unhandled {c:?}");
        }
        assert_eq!(replayed.encode_state(), live.encode_state());
        assert_eq!(
            replayed.account(ClientId(2)).granted.to_bits(),
            live.account(ClientId(2)).granted.to_bits()
        );
    }

    #[test]
    fn sharded_ledger_is_bit_identical_to_single_shard() {
        let drive = |l: &mut CreditLedger| {
            for i in 0..20u32 {
                l.on_wu_validated(&[ClientId(i), ClientId(i + 3)], &[ClientId(i + 7)], 1.1e9);
                if i % 3 == 0 {
                    l.on_error(ClientId(i));
                }
                l.on_wu_validated_scaled(&[ClientId(i)], &[], 0.7e9, 0.93);
            }
        };
        let mut base = CreditLedger::new();
        drive(&mut base);
        for n in [1usize, 2, 4, 8] {
            let mut l = CreditLedger::with_shards(n);
            assert_eq!(l.n_shards(), n);
            drive(&mut l);
            assert_eq!(
                l.encode_state(),
                base.encode_state(),
                "diverged at {n} shards"
            );
            assert_eq!(
                l.total_granted().to_bits(),
                base.total_granted().to_bits(),
                "f64 accumulation order changed at {n} shards"
            );
            assert_eq!(l.leaderboard(), base.leaderboard());
            assert_eq!(l.unreliable_hosts(0.5), base.unreliable_hosts(0.5));
            // decode is single-shard; reshard restores the partitioning.
            let mut back = CreditLedger::decode_state(&l.encode_state()).unwrap();
            assert_eq!(back.n_shards(), 1);
            back.reshard(n);
            assert_eq!(back.n_shards(), n);
            assert_eq!(back.encode_state(), base.encode_state());
        }
    }

    #[test]
    fn snapshot_round_trip_is_canonical() {
        let mut l = CreditLedger::new();
        l.on_wu_validated(&[ClientId(3), ClientId(1)], &[ClientId(9)], 1.23e9);
        l.on_error(ClientId(1));
        let enc = l.encode_state();
        let back = CreditLedger::decode_state(&enc).unwrap();
        assert_eq!(back.encode_state(), enc);
        assert_eq!(back.account(ClientId(1)).errors, 1);
        assert_eq!(
            back.account(ClientId(3)).granted.to_bits(),
            l.account(ClientId(3)).granted.to_bits()
        );
    }
}
