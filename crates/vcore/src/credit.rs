//! Credit accounting and host reputation.
//!
//! BOINC's volunteer incentive is *credit*, granted only for results
//! that participate in a validated quorum — the same mechanism §III.B
//! leans on for byzantine tolerance: a corrupted output never matches
//! the canonical fingerprint, so the cheater earns nothing, while the
//! agreeing replicas split the granted credit.
//!
//! The error-rate ledger mirrors BOINC's adaptive host punishment: a
//! host whose results keep failing validation sees its reliability
//! score decay, which real projects use to steer replication.

use crate::types::ClientId;
use std::collections::HashMap;

/// Credit and reliability ledger for the volunteer population.
#[derive(Debug, Default)]
pub struct CreditLedger {
    accounts: HashMap<ClientId, HostAccount>,
}

/// One volunteer's record.
#[derive(Debug, Clone, Default)]
pub struct HostAccount {
    /// Total granted credit (cobblestones).
    pub granted: f64,
    /// Results that validated (were part of a quorum).
    pub valid_results: u64,
    /// Successful-looking results that *failed* validation (dissenting
    /// fingerprints — byzantine or faulty hardware).
    pub invalid_results: u64,
    /// Client-side errors and deadline misses.
    pub errors: u64,
}

impl HostAccount {
    /// BOINC-style error rate estimate, biased optimistic for new hosts
    /// (starts at 0.1, decays with validated work, grows with failures).
    pub fn error_rate(&self) -> f64 {
        let total = (self.valid_results + self.invalid_results + self.errors) as f64;
        let bad = (self.invalid_results + self.errors) as f64;
        (bad + 0.1) / (total + 1.0)
    }

    /// Reliability = 1 − error rate.
    pub fn reliability(&self) -> f64 {
        1.0 - self.error_rate()
    }
}

/// Credit claimed for a task of `flops` floating-point operations, in
/// BOINC cobblestones (100 cobblestones ≈ 864 000 GFLOP-seconds of the
/// reference machine; we keep the historical formula's shape).
pub fn claimed_credit(flops: f64) -> f64 {
    flops / 1e9 * (100.0 / 864.0)
}

impl CreditLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        CreditLedger::default()
    }

    /// The account of `c` (created on first touch).
    pub fn account(&self, c: ClientId) -> HostAccount {
        self.accounts.get(&c).cloned().unwrap_or_default()
    }

    fn entry(&mut self, c: ClientId) -> &mut HostAccount {
        self.accounts.entry(c).or_default()
    }

    /// A work unit validated: the agreeing replicas each receive the
    /// granted credit (BOINC grants the *same* amount to every member
    /// of the quorum — typically the median/min of the claims; with
    /// identical task sizes the claim itself).
    pub fn on_wu_validated(&mut self, agreeing: &[ClientId], dissenting: &[ClientId], flops: f64) {
        let grant = claimed_credit(flops);
        for &c in agreeing {
            let a = self.entry(c);
            a.granted += grant;
            a.valid_results += 1;
        }
        for &c in dissenting {
            let a = self.entry(c);
            a.invalid_results += 1;
        }
    }

    /// A result errored client-side or missed its deadline.
    pub fn on_error(&mut self, c: ClientId) {
        self.entry(c).errors += 1;
    }

    /// Total credit granted across all hosts.
    pub fn total_granted(&self) -> f64 {
        self.accounts.values().map(|a| a.granted).sum()
    }

    /// Hosts ordered by granted credit, descending (the leaderboard
    /// every BOINC project publishes).
    pub fn leaderboard(&self) -> Vec<(ClientId, f64)> {
        let mut v: Vec<(ClientId, f64)> =
            self.accounts.iter().map(|(&c, a)| (c, a.granted)).collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        v
    }

    /// Hosts whose error rate exceeds `threshold` (candidates for
    /// increased replication / quarantine).
    pub fn unreliable_hosts(&self, threshold: f64) -> Vec<ClientId> {
        let mut v: Vec<ClientId> = self
            .accounts
            .iter()
            .filter(|(_, a)| a.error_rate() > threshold)
            .map(|(&c, _)| c)
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_members_split_nothing_they_each_get_full_grant() {
        let mut l = CreditLedger::new();
        l.on_wu_validated(&[ClientId(0), ClientId(1)], &[], 864e9);
        let a0 = l.account(ClientId(0));
        let a1 = l.account(ClientId(1));
        assert!((a0.granted - 100.0).abs() < 1e-9, "{}", a0.granted);
        assert_eq!(a0.granted, a1.granted);
        assert_eq!(a0.valid_results, 1);
        assert!((l.total_granted() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn dissenters_earn_nothing_and_lose_reliability() {
        let mut l = CreditLedger::new();
        for _ in 0..10 {
            l.on_wu_validated(&[ClientId(0)], &[ClientId(7)], 1e9);
        }
        let honest = l.account(ClientId(0));
        let cheat = l.account(ClientId(7));
        assert_eq!(cheat.granted, 0.0);
        assert_eq!(cheat.invalid_results, 10);
        assert!(cheat.error_rate() > 0.9);
        assert!(honest.error_rate() < 0.05);
        assert_eq!(l.unreliable_hosts(0.5), vec![ClientId(7)]);
    }

    #[test]
    fn new_hosts_start_mildly_distrusted() {
        let a = HostAccount::default();
        assert!((a.error_rate() - 0.1).abs() < 1e-9);
        assert!((a.reliability() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn errors_count_against_reliability() {
        let mut l = CreditLedger::new();
        l.on_error(ClientId(3));
        l.on_error(ClientId(3));
        assert_eq!(l.account(ClientId(3)).errors, 2);
        assert!(l.account(ClientId(3)).error_rate() > 0.5);
    }

    #[test]
    fn leaderboard_sorted_desc() {
        let mut l = CreditLedger::new();
        l.on_wu_validated(&[ClientId(2)], &[], 5e9);
        l.on_wu_validated(&[ClientId(1)], &[], 9e9);
        l.on_wu_validated(&[ClientId(0)], &[], 1e9);
        let board = l.leaderboard();
        assert_eq!(board[0].0, ClientId(1));
        assert_eq!(board[2].0, ClientId(0));
        assert!(board[0].1 > board[1].1);
    }

    #[test]
    fn claimed_credit_is_linear_in_flops() {
        assert!((claimed_credit(2.0 * 864e9) - 200.0).abs() < 1e-9);
        assert_eq!(claimed_credit(0.0), 0.0);
    }
}
