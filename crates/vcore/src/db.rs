//! In-memory project database, partitioned into shards.
//!
//! Mirrors the tables a BOINC server keeps in MySQL: `workunit` and
//! `result`, with the secondary indexes the daemons use (unsent results
//! per app, results per WU, live results per client).
//!
//! **Sharding.** The tables are split across `N` shard structs — work
//! units by `wu_id % N`, results by `rid % N`, per-client tallies by
//! `client_id % N` — mirroring production BOINC's `wu_id mod n` daemon
//! partitioning. Ids stay global and dense (`local index = id / N`), so
//! row lookup is O(1) arithmetic, and every cross-shard iteration
//! ([`Db::unsent_results`], [`Db::encode_state`]) merges shards in
//! global id order. That merge order makes the sharding invisible:
//! **any shard count produces byte-identical snapshots and identical
//! iteration order**, and `N = 1` is exactly the historical layout.
//! The per-shard split is what the worker-pool daemon passes
//! (`crate::shard`) and the scheduler's sharded feeder fan out over.
//!
//! **Durability.** Every public mutator is journaled: it appends a
//! typed [`StateChange`] to the engine-owned WAL *before* applying the
//! mutation (write-ahead), through a [`Journal`] handle that is a
//! single branch when durability is off. Replay goes through
//! [`Db::apply_change`], which routes each record to the same private
//! `raw_*` appliers the live mutators use — so replayed state cannot
//! drift from live state. Snapshots serialize only the two row tables
//! ([`Db::encode_state`]) in global id order; the secondary indexes are
//! derived data and are rebuilt on decode.

use crate::types::{ClientId, FileRef, OutputFingerprint, ResultId, WuId};
use crate::workunit::{ResultOutcome, ResultRec, ResultState, WorkUnit, WorkUnitSpec, WuState};
use std::collections::{BTreeSet, HashMap};
use vmr_desim::SimTime;
use vmr_durable::{Dec, Enc, Journal, StateChange, WireError};

/// One partition of the project database (rows whose id is congruent
/// to this shard's index modulo the shard count).
#[derive(Default, Debug)]
struct DbShard {
    /// Work units of this shard, local index = `wu_id / n_shards`.
    wus: Vec<WorkUnit>,
    /// Results of this shard, local index = `rid / n_shards`.
    results: Vec<ResultRec>,
    /// Unsent results of this shard, ordered by id.
    unsent: BTreeSet<ResultId>,
    /// Results per WU, for WUs of this shard.
    by_wu: HashMap<WuId, Vec<ResultId>>,
    /// Live result count per client, for clients of this shard.
    live_by_client: HashMap<ClientId, u32>,
}

/// The project database.
pub struct Db {
    n_shards: usize,
    shards: Vec<DbShard>,
    /// Total work units ever inserted (next global WU id).
    n_wus: usize,
    /// Total results ever created (next global result id).
    n_results: usize,
    /// WAL handle (disabled by default — a no-op on every append).
    journal: Journal,
}

impl Default for Db {
    fn default() -> Self {
        Db::with_shards(1)
    }
}

impl Db {
    /// An empty single-shard database.
    pub fn new() -> Self {
        Db::default()
    }

    /// An empty database partitioned into `n` shards (`n ≥ 1`).
    pub fn with_shards(n: usize) -> Self {
        assert!(n >= 1, "shard count must be at least 1");
        Db {
            n_shards: n,
            shards: (0..n).map(|_| DbShard::default()).collect(),
            n_wus: 0,
            n_results: 0,
            journal: Journal::disabled(),
        }
    }

    /// Number of shards the tables are partitioned into.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Re-partitions the tables into `n` shards, preserving all rows
    /// and ids (used when recovering a snapshot into an engine built
    /// with a different shard count).
    pub fn reshard(&mut self, n: usize) {
        assert!(n >= 1, "shard count must be at least 1");
        if n == self.n_shards {
            return;
        }
        // Collect every row back into dense global-id order.
        let mut wus: Vec<Option<WorkUnit>> = (0..self.n_wus).map(|_| None).collect();
        let mut results: Vec<Option<ResultRec>> = (0..self.n_results).map(|_| None).collect();
        for shard in self.shards.drain(..) {
            for w in shard.wus {
                let i = w.id.0 as usize;
                wus[i] = Some(w);
            }
            for r in shard.results {
                let i = r.id.0 as usize;
                results[i] = Some(r);
            }
        }
        self.n_shards = n;
        self.shards = (0..n).map(|_| DbShard::default()).collect();
        for w in wus.into_iter().map(Option::unwrap) {
            let s = w.id.0 as usize % n;
            self.shards[s].wus.push(w);
        }
        // Distributing in global id order keeps each shard's rows and
        // the rebuilt per-WU lists in id/creation order.
        for r in results.into_iter().map(Option::unwrap) {
            let ws = r.wu.0 as usize % n;
            self.shards[ws].by_wu.entry(r.wu).or_default().push(r.id);
            match r.state {
                ResultState::Unsent => {
                    self.shards[r.id.0 as usize % n].unsent.insert(r.id);
                }
                ResultState::InProgress => {
                    if let Some(c) = r.client {
                        *self.shards[c.0 as usize % n]
                            .live_by_client
                            .entry(c)
                            .or_insert(0) += 1;
                    }
                }
                ResultState::Over => {}
            }
            self.shards[r.id.0 as usize % n].results.push(r);
        }
    }

    /// Attaches the engine's WAL handle; subsequent mutations append
    /// change records.
    pub fn set_journal(&mut self, journal: Journal) {
        self.journal = journal;
    }

    #[inline]
    fn wu_slot(&self, id: WuId) -> (usize, usize) {
        let i = id.0 as usize;
        if self.n_shards == 1 {
            (0, i)
        } else {
            (i % self.n_shards, i / self.n_shards)
        }
    }

    #[inline]
    fn rid_slot(&self, id: ResultId) -> (usize, usize) {
        let i = id.0 as usize;
        if self.n_shards == 1 {
            (0, i)
        } else {
            (i % self.n_shards, i / self.n_shards)
        }
    }

    #[inline]
    fn client_shard(&self, c: ClientId) -> usize {
        if self.n_shards == 1 {
            0
        } else {
            c.0 as usize % self.n_shards
        }
    }

    fn all_results_in_id_order(&self) -> impl Iterator<Item = &ResultRec> + '_ {
        (0..self.n_results).map(move |i| {
            let (s, l) = self.rid_slot(ResultId(i as u32));
            &self.shards[s].results[l]
        })
    }

    fn all_wus_in_id_order(&self) -> impl Iterator<Item = &WorkUnit> + '_ {
        (0..self.n_wus).map(move |i| {
            let (s, l) = self.wu_slot(WuId(i as u32));
            &self.shards[s].wus[l]
        })
    }

    // ----- work units -----------------------------------------------------

    /// Inserts a work unit and creates its initial `target_nresults`
    /// result instances. Returns the new WU id.
    pub fn insert_workunit(&mut self, spec: WorkUnitSpec, now: SimTime) -> WuId {
        let id = WuId(self.n_wus as u32);
        let target = spec.target_nresults;
        self.journal.append(&StateChange::WuInserted {
            wu: id.0,
            at_us: now.as_micros(),
            spec: spec.to_bytes(),
        });
        self.raw_insert_workunit(spec, now);
        for _ in 0..target {
            self.create_result(id);
        }
        id
    }

    /// Creates one more result instance for `wu` (transitioner retry
    /// path). Respects no cap — callers check `max_total_results`.
    pub fn create_result(&mut self, wu: WuId) -> ResultId {
        let id = ResultId(self.n_results as u32);
        self.journal.append(&StateChange::ResultCreated {
            rid: id.0,
            wu: wu.0,
        });
        self.raw_create_result(wu);
        id
    }

    /// The work unit row.
    pub fn wu(&self, id: WuId) -> &WorkUnit {
        let (s, l) = self.wu_slot(id);
        &self.shards[s].wus[l]
    }

    /// Mutable work unit row.
    pub fn wu_mut(&mut self, id: WuId) -> &mut WorkUnit {
        let (s, l) = self.wu_slot(id);
        &mut self.shards[s].wus[l]
    }

    /// All work unit ids.
    pub fn wu_ids(&self) -> impl Iterator<Item = WuId> + '_ {
        (0..self.n_wus as u32).map(WuId)
    }

    /// Work unit ids belonging to shard `s`, in id order.
    pub fn shard_wu_ids(&self, s: usize) -> impl Iterator<Item = WuId> + '_ {
        let n = self.n_shards;
        ((s as u32)..self.n_wus as u32)
            .step_by(n)
            .map(WuId)
            .take(self.shards[s].wus.len())
    }

    /// Number of work units.
    pub fn n_wus(&self) -> usize {
        self.n_wus
    }

    /// Number of results ever created.
    pub fn n_results(&self) -> usize {
        self.n_results
    }

    // ----- results --------------------------------------------------------

    /// The result row.
    pub fn result(&self, id: ResultId) -> &ResultRec {
        let (s, l) = self.rid_slot(id);
        &self.shards[s].results[l]
    }

    /// Result ids belonging to `wu`.
    pub fn results_of(&self, wu: WuId) -> &[ResultId] {
        let s = wu.0 as usize % self.n_shards;
        self.shards[s]
            .by_wu
            .get(&wu)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Unsent results, in global id order (an id-order merge of the
    /// per-shard ordered sets — identical to the single-shard scan).
    pub fn unsent_results(&self) -> impl Iterator<Item = ResultId> + '_ {
        MergeIds::new(
            self.shards
                .iter()
                .map(|s| s.unsent.iter().copied().peekable())
                .collect(),
        )
    }

    /// Unsent results belonging to shard `s` (rids congruent to `s`
    /// modulo the shard count), in id order.
    pub fn shard_unsent(&self, s: usize) -> impl Iterator<Item = ResultId> + '_ {
        self.shards[s].unsent.iter().copied()
    }

    /// Number of unsent results.
    pub fn n_unsent(&self) -> usize {
        self.shards.iter().map(|s| s.unsent.len()).sum()
    }

    /// Live results currently assigned to `client`.
    pub fn live_count(&self, client: ClientId) -> u32 {
        self.shards[self.client_shard(client)]
            .live_by_client
            .get(&client)
            .copied()
            .unwrap_or(0)
    }

    /// Does `client` already hold (or has it ever held) a result of
    /// `wu`? BOINC's "one result per user per WU" scheduling rule.
    pub fn client_has_wu(&self, client: ClientId, wu: WuId) -> bool {
        self.results_of(wu)
            .iter()
            .any(|&rid| self.result(rid).client == Some(client))
    }

    /// Marks `rid` as sent to `client` with the given report deadline.
    ///
    /// # Panics
    /// If the result is not unsent.
    pub fn mark_sent(&mut self, rid: ResultId, client: ClientId, now: SimTime, deadline: SimTime) {
        assert_eq!(
            self.result(rid).state,
            ResultState::Unsent,
            "sending a non-unsent result"
        );
        self.journal.append(&StateChange::ResultSent {
            rid: rid.0,
            client: client.0,
            at_us: now.as_micros(),
            deadline_us: deadline.as_micros(),
        });
        self.raw_mark_sent(rid, client, now, deadline);
    }

    /// Records a client report for `rid`. Ignores reports for results
    /// already over (late replies after a deadline timeout).
    /// Returns `true` if the report was applied.
    pub fn mark_reported(
        &mut self,
        rid: ResultId,
        outcome: ResultOutcome,
        fingerprint: Option<OutputFingerprint>,
        now: SimTime,
    ) -> bool {
        if self.result(rid).state != ResultState::InProgress {
            return false;
        }
        self.journal.append(&StateChange::ResultReported {
            rid: rid.0,
            outcome: outcome.to_wire(),
            fingerprint: fingerprint.map(|f| f.0),
            at_us: now.as_micros(),
        });
        self.raw_mark_reported(rid, outcome, fingerprint, now);
        true
    }

    /// Expires an in-progress result whose deadline passed (NoReply).
    /// Returns `true` if it was still in progress.
    pub fn mark_timed_out(&mut self, rid: ResultId, now: SimTime) -> bool {
        self.mark_reported(rid, ResultOutcome::NoReply, None, now)
    }

    /// Cancels an unsent result (its WU validated without needing it).
    pub fn cancel_unsent(&mut self, rid: ResultId) -> bool {
        if self.result(rid).state != ResultState::Unsent {
            return false;
        }
        self.journal
            .append(&StateChange::ResultCancelled { rid: rid.0 });
        self.raw_cancel_unsent(rid);
        true
    }

    /// Validates `wu` with the quorum's canonical fingerprint
    /// (transitioner outcome).
    pub fn mark_wu_validated(&mut self, wu: WuId, canonical: OutputFingerprint, now: SimTime) {
        self.journal.append(&StateChange::WuValidated {
            wu: wu.0,
            canonical: canonical.0,
            at_us: now.as_micros(),
        });
        self.raw_mark_wu_validated(wu, canonical, now);
    }

    /// Fails `wu`: `max_total_results` exhausted without a quorum.
    pub fn mark_wu_failed(&mut self, wu: WuId, now: SimTime) {
        self.journal.append(&StateChange::WuFailed {
            wu: wu.0,
            at_us: now.as_micros(),
        });
        self.raw_mark_wu_failed(wu, now);
    }

    /// Sets (or clears, with `None`) the trust policy's override of the
    /// spec's `min_quorum` for `wu`. No-op when unchanged, so repeated
    /// decisions don't bloat the WAL.
    pub fn set_quorum_override(&mut self, wu: WuId, quorum: Option<u32>) {
        if self.wu(wu).quorum_override == quorum {
            return;
        }
        self.journal
            .append(&StateChange::WuQuorumOverride { wu: wu.0, quorum });
        self.raw_set_quorum_override(wu, quorum);
    }

    // ----- raw appliers (shared by live mutators and WAL replay) ----------

    fn raw_insert_workunit(&mut self, spec: WorkUnitSpec, now: SimTime) {
        let id = WuId(self.n_wus as u32);
        let (s, _) = self.wu_slot(id);
        self.shards[s].wus.push(WorkUnit {
            id,
            spec,
            state: WuState::Active,
            canonical: None,
            results_created: 0,
            created_at: now,
            finished_at: None,
            quorum_override: None,
        });
        self.n_wus += 1;
    }

    fn raw_create_result(&mut self, wu: WuId) {
        let id = ResultId(self.n_results as u32);
        let (s, _) = self.rid_slot(id);
        self.shards[s].results.push(ResultRec {
            id,
            wu,
            state: ResultState::Unsent,
            client: None,
            sent_at: None,
            report_deadline: None,
            reported_at: None,
            outcome: None,
            fingerprint: None,
        });
        self.shards[s].unsent.insert(id);
        self.n_results += 1;
        let ws = wu.0 as usize % self.n_shards;
        self.shards[ws].by_wu.entry(wu).or_default().push(id);
        self.wu_mut(wu).results_created += 1;
    }

    fn raw_mark_sent(&mut self, rid: ResultId, client: ClientId, now: SimTime, deadline: SimTime) {
        let (s, l) = self.rid_slot(rid);
        let r = &mut self.shards[s].results[l];
        r.state = ResultState::InProgress;
        r.client = Some(client);
        r.sent_at = Some(now);
        r.report_deadline = Some(deadline);
        self.shards[s].unsent.remove(&rid);
        let cs = self.client_shard(client);
        *self.shards[cs].live_by_client.entry(client).or_insert(0) += 1;
    }

    fn raw_mark_reported(
        &mut self,
        rid: ResultId,
        outcome: ResultOutcome,
        fingerprint: Option<OutputFingerprint>,
        now: SimTime,
    ) {
        let (s, l) = self.rid_slot(rid);
        let r = &mut self.shards[s].results[l];
        r.state = ResultState::Over;
        r.outcome = Some(outcome);
        r.fingerprint = fingerprint;
        r.reported_at = Some(now);
        if let Some(c) = r.client {
            let cs = self.client_shard(c);
            if let Some(n) = self.shards[cs].live_by_client.get_mut(&c) {
                *n = n.saturating_sub(1);
            }
        }
    }

    fn raw_cancel_unsent(&mut self, rid: ResultId) {
        let (s, l) = self.rid_slot(rid);
        let r = &mut self.shards[s].results[l];
        r.state = ResultState::Over;
        r.outcome = Some(ResultOutcome::WuDone);
        self.shards[s].unsent.remove(&rid);
    }

    fn raw_mark_wu_validated(&mut self, wu: WuId, canonical: OutputFingerprint, now: SimTime) {
        let w = self.wu_mut(wu);
        w.state = WuState::Validated;
        w.canonical = Some(canonical);
        w.finished_at = Some(now);
    }

    fn raw_mark_wu_failed(&mut self, wu: WuId, now: SimTime) {
        let w = self.wu_mut(wu);
        w.state = WuState::Failed;
        w.finished_at = Some(now);
    }

    fn raw_set_quorum_override(&mut self, wu: WuId, quorum: Option<u32>) {
        self.wu_mut(wu).quorum_override = quorum;
    }

    // ----- WAL replay + snapshots -----------------------------------------

    /// Applies one replayed change record. Returns `Ok(true)` when the
    /// record belongs to this table and was applied, `Ok(false)` when
    /// it belongs to another subsystem (credit, assimilator, tracker).
    pub fn apply_change(&mut self, c: &StateChange) -> Result<bool, WireError> {
        match c {
            StateChange::WuInserted { at_us, spec, .. } => {
                let spec = WorkUnitSpec::from_bytes(spec)?;
                self.raw_insert_workunit(spec, SimTime::from_micros(*at_us));
            }
            StateChange::ResultCreated { wu, .. } => {
                self.raw_create_result(WuId(*wu));
            }
            StateChange::ResultSent {
                rid,
                client,
                at_us,
                deadline_us,
            } => {
                self.raw_mark_sent(
                    ResultId(*rid),
                    ClientId(*client),
                    SimTime::from_micros(*at_us),
                    SimTime::from_micros(*deadline_us),
                );
            }
            StateChange::ResultReported {
                rid,
                outcome,
                fingerprint,
                at_us,
            } => {
                self.raw_mark_reported(
                    ResultId(*rid),
                    ResultOutcome::from_wire(*outcome)?,
                    fingerprint.map(OutputFingerprint),
                    SimTime::from_micros(*at_us),
                );
            }
            StateChange::ResultCancelled { rid } => {
                self.raw_cancel_unsent(ResultId(*rid));
            }
            StateChange::WuValidated {
                wu,
                canonical,
                at_us,
            } => {
                self.raw_mark_wu_validated(
                    WuId(*wu),
                    OutputFingerprint(*canonical),
                    SimTime::from_micros(*at_us),
                );
            }
            StateChange::WuFailed { wu, at_us } => {
                self.raw_mark_wu_failed(WuId(*wu), SimTime::from_micros(*at_us));
            }
            StateChange::WuQuorumOverride { wu, quorum } => {
                self.raw_set_quorum_override(WuId(*wu), *quorum);
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Canonical snapshot of the two row tables, iterated in global id
    /// order. The secondary indexes are derived and excluded, so two
    /// equal databases encode to byte-identical vectors **at any shard
    /// count** (the recovery audit's comparison).
    pub fn encode_state(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(64 + self.n_wus * 64 + self.n_results * 32);
        e.u32(self.n_wus as u32);
        for w in self.all_wus_in_id_order() {
            e.bytes(&w.spec.to_bytes());
            e.u8(w.state.to_wire());
            e.opt_u64(w.canonical.map(|f| f.0));
            e.u32(w.results_created);
            e.u64(w.created_at.as_micros());
            e.opt_u64(w.finished_at.map(SimTime::as_micros));
            e.opt_u32(w.quorum_override);
        }
        e.u32(self.n_results as u32);
        for r in self.all_results_in_id_order() {
            e.u32(r.wu.0);
            e.u8(r.state.to_wire());
            e.opt_u32(r.client.map(|c| c.0));
            e.opt_u64(r.sent_at.map(SimTime::as_micros));
            e.opt_u64(r.report_deadline.map(SimTime::as_micros));
            e.opt_u64(r.reported_at.map(SimTime::as_micros));
            match r.outcome {
                None => e.bool(false),
                Some(o) => {
                    e.bool(true);
                    e.u8(o.to_wire());
                }
            }
            e.opt_u64(r.fingerprint.map(|f| f.0));
        }
        e.into_vec()
    }

    /// Rebuilds a single-shard database from an [`Db::encode_state`]
    /// snapshot section, reconstructing every secondary index (call
    /// [`Db::reshard`] afterwards to adopt an engine's shard count).
    /// The journal handle starts disabled.
    pub fn decode_state(b: &[u8]) -> Result<Db, WireError> {
        let mut d = Dec::new(b);
        let n_wus = d.u32()? as usize;
        let mut wus = Vec::with_capacity(n_wus.min(1 << 16));
        for i in 0..n_wus {
            let spec = WorkUnitSpec::from_bytes(&d.bytes()?)?;
            wus.push(WorkUnit {
                id: WuId(i as u32),
                spec,
                state: WuState::from_wire(d.u8()?)?,
                canonical: d.opt_u64()?.map(OutputFingerprint),
                results_created: d.u32()?,
                created_at: SimTime::from_micros(d.u64()?),
                finished_at: d.opt_u64()?.map(SimTime::from_micros),
                quorum_override: d.opt_u32()?,
            });
        }
        let n_results = d.u32()? as usize;
        let mut results = Vec::with_capacity(n_results.min(1 << 16));
        for i in 0..n_results {
            let wu = WuId(d.u32()?);
            let state = ResultState::from_wire(d.u8()?)?;
            let client = d.opt_u32()?.map(ClientId);
            let sent_at = d.opt_u64()?.map(SimTime::from_micros);
            let report_deadline = d.opt_u64()?.map(SimTime::from_micros);
            let reported_at = d.opt_u64()?.map(SimTime::from_micros);
            let outcome = if d.bool()? {
                Some(ResultOutcome::from_wire(d.u8()?)?)
            } else {
                None
            };
            let fingerprint = d.opt_u64()?.map(OutputFingerprint);
            results.push(ResultRec {
                id: ResultId(i as u32),
                wu,
                state,
                client,
                sent_at,
                report_deadline,
                reported_at,
                outcome,
                fingerprint,
            });
        }
        d.finish()?;

        // Rebuild the derived indexes. Iterating results in id order
        // reproduces the per-WU creation order `by_wu` accumulated live.
        let mut shard = DbShard::default();
        for r in &results {
            shard.by_wu.entry(r.wu).or_default().push(r.id);
            match r.state {
                ResultState::Unsent => {
                    shard.unsent.insert(r.id);
                }
                ResultState::InProgress => {
                    if let Some(c) = r.client {
                        *shard.live_by_client.entry(c).or_insert(0) += 1;
                    }
                }
                ResultState::Over => {}
            }
        }
        shard.wus = wus;
        shard.results = results;
        Ok(Db {
            n_shards: 1,
            n_wus: shard.wus.len(),
            n_results: shard.results.len(),
            shards: vec![shard],
            journal: Journal::disabled(),
        })
    }

    /// Input files of a result's work unit.
    pub fn inputs_of(&self, rid: ResultId) -> &[FileRef] {
        let wu = self.result(rid).wu;
        &self.wu(wu).spec.inputs
    }

    /// True when every WU is validated or failed.
    pub fn all_wus_terminal(&self) -> bool {
        self.shards.iter().all(|s| {
            s.wus
                .iter()
                .all(|w| matches!(w.state, WuState::Validated | WuState::Failed))
        })
    }

    /// Count of WUs in a given state.
    pub fn count_state(&self, state: WuState) -> usize {
        self.shards
            .iter()
            .map(|s| s.wus.iter().filter(|w| w.state == state).count())
            .sum()
    }
}

/// K-way merge of per-shard ascending id iterators into one global
/// ascending stream. Shard counts are small (≤ a few dozen), so a
/// linear scan over the heads beats a heap.
struct MergeIds<I: Iterator<Item = ResultId>> {
    heads: Vec<std::iter::Peekable<I>>,
}

impl<I: Iterator<Item = ResultId>> MergeIds<I> {
    fn new(heads: Vec<std::iter::Peekable<I>>) -> Self {
        MergeIds { heads }
    }
}

impl<I: Iterator<Item = ResultId>> Iterator for MergeIds<I> {
    type Item = ResultId;
    fn next(&mut self) -> Option<ResultId> {
        if self.heads.len() == 1 {
            return self.heads[0].next();
        }
        let mut best: Option<(usize, ResultId)> = None;
        for (i, it) in self.heads.iter_mut().enumerate() {
            if let Some(&id) = it.peek() {
                if best.map(|(_, b)| id < b).unwrap_or(true) {
                    best = Some((i, id));
                }
            }
        }
        let (i, _) = best?;
        self.heads[i].next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workunit::WorkUnitSpec;

    fn spec(name: &str) -> WorkUnitSpec {
        WorkUnitSpec::basic(name, "app", 1e9)
    }

    #[test]
    fn insert_creates_replicas() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        assert_eq!(db.results_of(wu).len(), 2);
        assert_eq!(db.n_unsent(), 2);
        assert_eq!(db.wu(wu).results_created, 2);
    }

    #[test]
    fn send_and_report_lifecycle() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        let rid = db.results_of(wu)[0];
        let c = ClientId(1);
        db.mark_sent(rid, c, SimTime::ZERO, SimTime::from_secs(100));
        assert_eq!(db.live_count(c), 1);
        assert!(db.client_has_wu(c, wu));
        assert_eq!(db.n_unsent(), 1);
        assert!(db.mark_reported(
            rid,
            ResultOutcome::Success,
            Some(OutputFingerprint(7)),
            SimTime::from_secs(50),
        ));
        assert_eq!(db.live_count(c), 0);
        assert!(db.result(rid).is_success());
        // Double report ignored.
        assert!(!db.mark_reported(rid, ResultOutcome::Error, None, SimTime::from_secs(60)));
    }

    #[test]
    fn one_result_per_client_per_wu_rule_data() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        let rids = db.results_of(wu).to_vec();
        db.mark_sent(rids[0], ClientId(1), SimTime::ZERO, SimTime::from_secs(100));
        assert!(db.client_has_wu(ClientId(1), wu));
        assert!(!db.client_has_wu(ClientId(2), wu));
    }

    #[test]
    fn timeout_marks_noreply() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        let rid = db.results_of(wu)[0];
        db.mark_sent(rid, ClientId(1), SimTime::ZERO, SimTime::from_secs(10));
        assert!(db.mark_timed_out(rid, SimTime::from_secs(10)));
        assert_eq!(db.result(rid).outcome, Some(ResultOutcome::NoReply));
        assert!(!db.mark_timed_out(rid, SimTime::from_secs(11)));
    }

    #[test]
    fn cancel_unsent_only_touches_unsent() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        let rids = db.results_of(wu).to_vec();
        db.mark_sent(rids[0], ClientId(1), SimTime::ZERO, SimTime::from_secs(10));
        assert!(!db.cancel_unsent(rids[0]));
        assert!(db.cancel_unsent(rids[1]));
        assert_eq!(db.n_unsent(), 0);
        assert_eq!(db.result(rids[1]).outcome, Some(ResultOutcome::WuDone));
    }

    #[test]
    fn extra_result_creation() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        let extra = db.create_result(wu);
        assert_eq!(db.results_of(wu).len(), 3);
        assert_eq!(db.wu(wu).results_created, 3);
        assert!(db.unsent_results().any(|r| r == extra));
    }

    #[test]
    fn quorum_override_changes_effective_quorum() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        assert_eq!(db.wu(wu).effective_quorum(), 2);
        db.set_quorum_override(wu, Some(1));
        assert_eq!(db.wu(wu).effective_quorum(), 1);
        db.set_quorum_override(wu, None);
        assert_eq!(db.wu(wu).effective_quorum(), 2);
    }

    #[test]
    fn terminal_tracking() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        assert!(!db.all_wus_terminal());
        db.wu_mut(wu).state = WuState::Validated;
        assert!(db.all_wus_terminal());
        assert_eq!(db.count_state(WuState::Validated), 1);
    }

    /// Drives `db` through every journaled mutator.
    fn exercise(db: &mut Db) {
        let a = db.insert_workunit(spec("a"), SimTime::ZERO);
        let b = db.insert_workunit(spec("b"), SimTime::from_secs(1));
        let ra = db.results_of(a).to_vec();
        let rb = db.results_of(b).to_vec();
        db.mark_sent(
            ra[0],
            ClientId(1),
            SimTime::from_secs(2),
            SimTime::from_secs(100),
        );
        db.mark_sent(
            ra[1],
            ClientId(2),
            SimTime::from_secs(3),
            SimTime::from_secs(100),
        );
        db.mark_reported(
            ra[0],
            ResultOutcome::Success,
            Some(OutputFingerprint(7)),
            SimTime::from_secs(10),
        );
        db.mark_reported(
            ra[1],
            ResultOutcome::Success,
            Some(OutputFingerprint(7)),
            SimTime::from_secs(11),
        );
        db.mark_wu_validated(a, OutputFingerprint(7), SimTime::from_secs(11));
        db.mark_sent(
            rb[0],
            ClientId(3),
            SimTime::from_secs(4),
            SimTime::from_secs(50),
        );
        db.mark_timed_out(rb[0], SimTime::from_secs(50));
        let extra = db.create_result(b);
        db.cancel_unsent(extra);
        db.set_quorum_override(b, Some(1));
        db.set_quorum_override(b, Some(1)); // unchanged: no record
        db.mark_wu_failed(b, SimTime::from_secs(60));
    }

    #[test]
    fn wal_replay_reproduces_live_state() {
        use vmr_durable::{recover, DurabilityPlan};
        let j = Journal::new(&DurabilityPlan::new(0.0)).unwrap();
        let mut live = Db::new();
        live.set_journal(j.clone());
        exercise(&mut live);
        j.commit();
        let r = recover(&j.log_bytes()).unwrap();
        assert!(!r.tail.is_empty());
        let mut replayed = Db::new();
        for c in &r.tail {
            assert!(replayed.apply_change(c).unwrap(), "unhandled {c:?}");
        }
        assert_eq!(replayed.encode_state(), live.encode_state());
        assert_eq!(replayed.n_unsent(), live.n_unsent());
        assert_eq!(
            replayed.live_count(ClientId(1)),
            live.live_count(ClientId(1))
        );
    }

    #[test]
    fn snapshot_round_trip_is_canonical() {
        let mut db = Db::new();
        exercise(&mut db);
        let enc = db.encode_state();
        let back = Db::decode_state(&enc).unwrap();
        assert_eq!(back.encode_state(), enc);
        assert_eq!(back.n_wus(), db.n_wus());
        assert_eq!(back.n_results(), db.n_results());
        assert_eq!(back.n_unsent(), db.n_unsent());
        for wu in db.wu_ids() {
            assert_eq!(back.results_of(wu), db.results_of(wu));
            assert_eq!(back.wu(wu).state, db.wu(wu).state);
            assert_eq!(back.wu(wu).canonical, db.wu(wu).canonical);
        }
        // Unexercised journaled mutators still work on a decoded db.
        let mut back = back;
        let c = back.create_result(WuId(0));
        assert!(back.cancel_unsent(c));
    }

    /// The sharded database is indistinguishable from the single-shard
    /// one: same ids, same iteration order, byte-identical snapshots.
    #[test]
    fn sharded_db_is_bit_identical_to_single_shard() {
        for n in [1usize, 2, 3, 4, 8] {
            let mut base = Db::new();
            let mut sharded = Db::with_shards(n);
            exercise(&mut base);
            exercise(&mut sharded);
            assert_eq!(
                sharded.encode_state(),
                base.encode_state(),
                "snapshot differs at {n} shards"
            );
            assert_eq!(
                sharded.unsent_results().collect::<Vec<_>>(),
                base.unsent_results().collect::<Vec<_>>(),
                "unsent order differs at {n} shards"
            );
            assert_eq!(sharded.n_unsent(), base.n_unsent());
            for wu in base.wu_ids() {
                assert_eq!(sharded.results_of(wu), base.results_of(wu));
            }
            for c in [1u32, 2, 3] {
                assert_eq!(
                    sharded.live_count(ClientId(c)),
                    base.live_count(ClientId(c))
                );
            }
            assert_eq!(sharded.all_wus_terminal(), base.all_wus_terminal());
            assert_eq!(
                sharded.count_state(WuState::Validated),
                base.count_state(WuState::Validated)
            );
        }
    }

    #[test]
    fn reshard_preserves_everything() {
        let mut db = Db::new();
        exercise(&mut db);
        for n in [4usize, 2, 8, 1, 3] {
            let enc = db.encode_state();
            let unsent: Vec<_> = db.unsent_results().collect();
            db.reshard(n);
            assert_eq!(db.n_shards(), n);
            assert_eq!(db.encode_state(), enc, "reshard({n}) changed the snapshot");
            assert_eq!(db.unsent_results().collect::<Vec<_>>(), unsent);
            assert_eq!(db.live_count(ClientId(1)), 0);
            // Mutators still work after resharding.
            let extra = db.create_result(WuId(0));
            assert!(db.cancel_unsent(extra));
        }
    }

    #[test]
    fn shard_wu_ids_partition_the_id_space() {
        let mut db = Db::with_shards(3);
        for i in 0..10 {
            db.insert_workunit(spec(&format!("w{i}")), SimTime::ZERO);
        }
        let mut all: Vec<u32> = Vec::new();
        for s in 0..3 {
            let ids: Vec<u32> = db.shard_wu_ids(s).map(|w| w.0).collect();
            assert!(ids.iter().all(|i| *i as usize % 3 == s));
            assert!(ids.windows(2).all(|w| w[0] < w[1]));
            all.extend(ids);
        }
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<u32>>());
    }
}
