//! In-memory project database.
//!
//! Mirrors the tables a BOINC server keeps in MySQL: `workunit` and
//! `result`, with the secondary indexes the daemons need (unsent results
//! per app, results per WU, live results per client).

use crate::types::{ClientId, FileRef, OutputFingerprint, ResultId, WuId};
use crate::workunit::{ResultOutcome, ResultRec, ResultState, WorkUnit, WorkUnitSpec, WuState};
use std::collections::{BTreeSet, HashMap};
use vmr_desim::SimTime;

/// The project database.
#[derive(Default)]
pub struct Db {
    wus: Vec<WorkUnit>,
    results: Vec<ResultRec>,
    /// Unsent results, ordered by id — the feeder scans this.
    unsent: BTreeSet<ResultId>,
    /// Results per WU.
    by_wu: HashMap<WuId, Vec<ResultId>>,
    /// Live (unsent/in-progress) result count per client.
    live_by_client: HashMap<ClientId, u32>,
}

impl Db {
    /// An empty database.
    pub fn new() -> Self {
        Db::default()
    }

    // ----- work units -----------------------------------------------------

    /// Inserts a work unit and creates its initial `target_nresults`
    /// result instances. Returns the new WU id.
    pub fn insert_workunit(&mut self, spec: WorkUnitSpec, now: SimTime) -> WuId {
        let id = WuId(self.wus.len() as u32);
        let target = spec.target_nresults;
        self.wus.push(WorkUnit {
            id,
            spec,
            state: WuState::Active,
            canonical: None,
            results_created: 0,
            created_at: now,
            finished_at: None,
        });
        for _ in 0..target {
            self.create_result(id);
        }
        id
    }

    /// Creates one more result instance for `wu` (transitioner retry
    /// path). Respects no cap — callers check `max_total_results`.
    pub fn create_result(&mut self, wu: WuId) -> ResultId {
        let id = ResultId(self.results.len() as u32);
        self.results.push(ResultRec {
            id,
            wu,
            state: ResultState::Unsent,
            client: None,
            sent_at: None,
            report_deadline: None,
            reported_at: None,
            outcome: None,
            fingerprint: None,
        });
        self.unsent.insert(id);
        self.by_wu.entry(wu).or_default().push(id);
        self.wus[wu.0 as usize].results_created += 1;
        id
    }

    /// The work unit row.
    pub fn wu(&self, id: WuId) -> &WorkUnit {
        &self.wus[id.0 as usize]
    }

    /// Mutable work unit row.
    pub fn wu_mut(&mut self, id: WuId) -> &mut WorkUnit {
        &mut self.wus[id.0 as usize]
    }

    /// All work unit ids.
    pub fn wu_ids(&self) -> impl Iterator<Item = WuId> + '_ {
        (0..self.wus.len() as u32).map(WuId)
    }

    /// Number of work units.
    pub fn n_wus(&self) -> usize {
        self.wus.len()
    }

    /// Number of results ever created.
    pub fn n_results(&self) -> usize {
        self.results.len()
    }

    // ----- results --------------------------------------------------------

    /// The result row.
    pub fn result(&self, id: ResultId) -> &ResultRec {
        &self.results[id.0 as usize]
    }

    /// Result ids belonging to `wu`.
    pub fn results_of(&self, wu: WuId) -> &[ResultId] {
        self.by_wu.get(&wu).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Unsent results, in id order.
    pub fn unsent_results(&self) -> impl Iterator<Item = ResultId> + '_ {
        self.unsent.iter().copied()
    }

    /// Number of unsent results.
    pub fn n_unsent(&self) -> usize {
        self.unsent.len()
    }

    /// Live results currently assigned to `client`.
    pub fn live_count(&self, client: ClientId) -> u32 {
        self.live_by_client.get(&client).copied().unwrap_or(0)
    }

    /// Does `client` already hold (or has it ever held) a result of
    /// `wu`? BOINC's "one result per user per WU" scheduling rule.
    pub fn client_has_wu(&self, client: ClientId, wu: WuId) -> bool {
        self.results_of(wu)
            .iter()
            .any(|&rid| self.results[rid.0 as usize].client == Some(client))
    }

    /// Marks `rid` as sent to `client` with the given report deadline.
    ///
    /// # Panics
    /// If the result is not unsent.
    pub fn mark_sent(&mut self, rid: ResultId, client: ClientId, now: SimTime, deadline: SimTime) {
        let r = &mut self.results[rid.0 as usize];
        assert_eq!(r.state, ResultState::Unsent, "sending a non-unsent result");
        r.state = ResultState::InProgress;
        r.client = Some(client);
        r.sent_at = Some(now);
        r.report_deadline = Some(deadline);
        self.unsent.remove(&rid);
        *self.live_by_client.entry(client).or_insert(0) += 1;
    }

    /// Records a client report for `rid`. Ignores reports for results
    /// already over (late replies after a deadline timeout).
    /// Returns `true` if the report was applied.
    pub fn mark_reported(
        &mut self,
        rid: ResultId,
        outcome: ResultOutcome,
        fingerprint: Option<OutputFingerprint>,
        now: SimTime,
    ) -> bool {
        let r = &mut self.results[rid.0 as usize];
        if r.state != ResultState::InProgress {
            return false;
        }
        r.state = ResultState::Over;
        r.outcome = Some(outcome);
        r.fingerprint = fingerprint;
        r.reported_at = Some(now);
        if let Some(c) = r.client {
            if let Some(n) = self.live_by_client.get_mut(&c) {
                *n = n.saturating_sub(1);
            }
        }
        true
    }

    /// Expires an in-progress result whose deadline passed (NoReply).
    /// Returns `true` if it was still in progress.
    pub fn mark_timed_out(&mut self, rid: ResultId, now: SimTime) -> bool {
        self.mark_reported(rid, ResultOutcome::NoReply, None, now)
    }

    /// Cancels an unsent result (its WU validated without needing it).
    pub fn cancel_unsent(&mut self, rid: ResultId) -> bool {
        let r = &mut self.results[rid.0 as usize];
        if r.state != ResultState::Unsent {
            return false;
        }
        r.state = ResultState::Over;
        r.outcome = Some(ResultOutcome::WuDone);
        self.unsent.remove(&rid);
        true
    }

    /// Input files of a result's work unit.
    pub fn inputs_of(&self, rid: ResultId) -> &[FileRef] {
        let wu = self.results[rid.0 as usize].wu;
        &self.wus[wu.0 as usize].spec.inputs
    }

    /// True when every WU is validated or failed.
    pub fn all_wus_terminal(&self) -> bool {
        self.wus
            .iter()
            .all(|w| matches!(w.state, WuState::Validated | WuState::Failed))
    }

    /// Count of WUs in a given state.
    pub fn count_state(&self, state: WuState) -> usize {
        self.wus.iter().filter(|w| w.state == state).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workunit::WorkUnitSpec;

    fn spec(name: &str) -> WorkUnitSpec {
        WorkUnitSpec::basic(name, "app", 1e9)
    }

    #[test]
    fn insert_creates_replicas() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        assert_eq!(db.results_of(wu).len(), 2);
        assert_eq!(db.n_unsent(), 2);
        assert_eq!(db.wu(wu).results_created, 2);
    }

    #[test]
    fn send_and_report_lifecycle() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        let rid = db.results_of(wu)[0];
        let c = ClientId(1);
        db.mark_sent(rid, c, SimTime::ZERO, SimTime::from_secs(100));
        assert_eq!(db.live_count(c), 1);
        assert!(db.client_has_wu(c, wu));
        assert_eq!(db.n_unsent(), 1);
        assert!(db.mark_reported(
            rid,
            ResultOutcome::Success,
            Some(OutputFingerprint(7)),
            SimTime::from_secs(50),
        ));
        assert_eq!(db.live_count(c), 0);
        assert!(db.result(rid).is_success());
        // Double report ignored.
        assert!(!db.mark_reported(rid, ResultOutcome::Error, None, SimTime::from_secs(60)));
    }

    #[test]
    fn one_result_per_client_per_wu_rule_data() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        let rids = db.results_of(wu).to_vec();
        db.mark_sent(rids[0], ClientId(1), SimTime::ZERO, SimTime::from_secs(100));
        assert!(db.client_has_wu(ClientId(1), wu));
        assert!(!db.client_has_wu(ClientId(2), wu));
    }

    #[test]
    fn timeout_marks_noreply() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        let rid = db.results_of(wu)[0];
        db.mark_sent(rid, ClientId(1), SimTime::ZERO, SimTime::from_secs(10));
        assert!(db.mark_timed_out(rid, SimTime::from_secs(10)));
        assert_eq!(db.result(rid).outcome, Some(ResultOutcome::NoReply));
        assert!(!db.mark_timed_out(rid, SimTime::from_secs(11)));
    }

    #[test]
    fn cancel_unsent_only_touches_unsent() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        let rids = db.results_of(wu).to_vec();
        db.mark_sent(rids[0], ClientId(1), SimTime::ZERO, SimTime::from_secs(10));
        assert!(!db.cancel_unsent(rids[0]));
        assert!(db.cancel_unsent(rids[1]));
        assert_eq!(db.n_unsent(), 0);
        assert_eq!(db.result(rids[1]).outcome, Some(ResultOutcome::WuDone));
    }

    #[test]
    fn extra_result_creation() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        let extra = db.create_result(wu);
        assert_eq!(db.results_of(wu).len(), 3);
        assert_eq!(db.wu(wu).results_created, 3);
        assert!(db.unsent_results().any(|r| r == extra));
    }

    #[test]
    fn terminal_tracking() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        assert!(!db.all_wus_terminal());
        db.wu_mut(wu).state = WuState::Validated;
        assert!(db.all_wus_terminal());
        assert_eq!(db.count_state(WuState::Validated), 1);
    }
}
