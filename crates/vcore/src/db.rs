//! In-memory project database.
//!
//! Mirrors the tables a BOINC server keeps in MySQL: `workunit` and
//! `result`, with the secondary indexes the daemons use (unsent results
//! per app, results per WU, live results per client).
//!
//! **Durability.** Every public mutator is journaled: it appends a
//! typed [`StateChange`] to the engine-owned WAL *before* applying the
//! mutation (write-ahead), through a [`Journal`] handle that is a
//! single branch when durability is off. Replay goes through
//! [`Db::apply_change`], which routes each record to the same private
//! `raw_*` appliers the live mutators use — so replayed state cannot
//! drift from live state. Snapshots serialize only the two row tables
//! ([`Db::encode_state`]); the secondary indexes are derived data and
//! are rebuilt on decode.

use crate::types::{ClientId, FileRef, OutputFingerprint, ResultId, WuId};
use crate::workunit::{ResultOutcome, ResultRec, ResultState, WorkUnit, WorkUnitSpec, WuState};
use std::collections::{BTreeSet, HashMap};
use vmr_desim::SimTime;
use vmr_durable::{Dec, Enc, Journal, StateChange, WireError};

/// The project database.
#[derive(Default)]
pub struct Db {
    wus: Vec<WorkUnit>,
    results: Vec<ResultRec>,
    /// Unsent results, ordered by id — the feeder scans this.
    unsent: BTreeSet<ResultId>,
    /// Results per WU.
    by_wu: HashMap<WuId, Vec<ResultId>>,
    /// Live (unsent/in-progress) result count per client.
    live_by_client: HashMap<ClientId, u32>,
    /// WAL handle (disabled by default — a no-op on every append).
    journal: Journal,
}

impl Db {
    /// An empty database.
    pub fn new() -> Self {
        Db::default()
    }

    /// Attaches the engine's WAL handle; subsequent mutations append
    /// change records.
    pub fn set_journal(&mut self, journal: Journal) {
        self.journal = journal;
    }

    // ----- work units -----------------------------------------------------

    /// Inserts a work unit and creates its initial `target_nresults`
    /// result instances. Returns the new WU id.
    pub fn insert_workunit(&mut self, spec: WorkUnitSpec, now: SimTime) -> WuId {
        let id = WuId(self.wus.len() as u32);
        let target = spec.target_nresults;
        self.journal.append(&StateChange::WuInserted {
            wu: id.0,
            at_us: now.as_micros(),
            spec: spec.to_bytes(),
        });
        self.raw_insert_workunit(spec, now);
        for _ in 0..target {
            self.create_result(id);
        }
        id
    }

    /// Creates one more result instance for `wu` (transitioner retry
    /// path). Respects no cap — callers check `max_total_results`.
    pub fn create_result(&mut self, wu: WuId) -> ResultId {
        let id = ResultId(self.results.len() as u32);
        self.journal.append(&StateChange::ResultCreated {
            rid: id.0,
            wu: wu.0,
        });
        self.raw_create_result(wu);
        id
    }

    /// The work unit row.
    pub fn wu(&self, id: WuId) -> &WorkUnit {
        &self.wus[id.0 as usize]
    }

    /// Mutable work unit row.
    pub fn wu_mut(&mut self, id: WuId) -> &mut WorkUnit {
        &mut self.wus[id.0 as usize]
    }

    /// All work unit ids.
    pub fn wu_ids(&self) -> impl Iterator<Item = WuId> + '_ {
        (0..self.wus.len() as u32).map(WuId)
    }

    /// Number of work units.
    pub fn n_wus(&self) -> usize {
        self.wus.len()
    }

    /// Number of results ever created.
    pub fn n_results(&self) -> usize {
        self.results.len()
    }

    // ----- results --------------------------------------------------------

    /// The result row.
    pub fn result(&self, id: ResultId) -> &ResultRec {
        &self.results[id.0 as usize]
    }

    /// Result ids belonging to `wu`.
    pub fn results_of(&self, wu: WuId) -> &[ResultId] {
        self.by_wu.get(&wu).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Unsent results, in id order.
    pub fn unsent_results(&self) -> impl Iterator<Item = ResultId> + '_ {
        self.unsent.iter().copied()
    }

    /// Number of unsent results.
    pub fn n_unsent(&self) -> usize {
        self.unsent.len()
    }

    /// Live results currently assigned to `client`.
    pub fn live_count(&self, client: ClientId) -> u32 {
        self.live_by_client.get(&client).copied().unwrap_or(0)
    }

    /// Does `client` already hold (or has it ever held) a result of
    /// `wu`? BOINC's "one result per user per WU" scheduling rule.
    pub fn client_has_wu(&self, client: ClientId, wu: WuId) -> bool {
        self.results_of(wu)
            .iter()
            .any(|&rid| self.results[rid.0 as usize].client == Some(client))
    }

    /// Marks `rid` as sent to `client` with the given report deadline.
    ///
    /// # Panics
    /// If the result is not unsent.
    pub fn mark_sent(&mut self, rid: ResultId, client: ClientId, now: SimTime, deadline: SimTime) {
        assert_eq!(
            self.results[rid.0 as usize].state,
            ResultState::Unsent,
            "sending a non-unsent result"
        );
        self.journal.append(&StateChange::ResultSent {
            rid: rid.0,
            client: client.0,
            at_us: now.as_micros(),
            deadline_us: deadline.as_micros(),
        });
        self.raw_mark_sent(rid, client, now, deadline);
    }

    /// Records a client report for `rid`. Ignores reports for results
    /// already over (late replies after a deadline timeout).
    /// Returns `true` if the report was applied.
    pub fn mark_reported(
        &mut self,
        rid: ResultId,
        outcome: ResultOutcome,
        fingerprint: Option<OutputFingerprint>,
        now: SimTime,
    ) -> bool {
        if self.results[rid.0 as usize].state != ResultState::InProgress {
            return false;
        }
        self.journal.append(&StateChange::ResultReported {
            rid: rid.0,
            outcome: outcome.to_wire(),
            fingerprint: fingerprint.map(|f| f.0),
            at_us: now.as_micros(),
        });
        self.raw_mark_reported(rid, outcome, fingerprint, now);
        true
    }

    /// Expires an in-progress result whose deadline passed (NoReply).
    /// Returns `true` if it was still in progress.
    pub fn mark_timed_out(&mut self, rid: ResultId, now: SimTime) -> bool {
        self.mark_reported(rid, ResultOutcome::NoReply, None, now)
    }

    /// Cancels an unsent result (its WU validated without needing it).
    pub fn cancel_unsent(&mut self, rid: ResultId) -> bool {
        if self.results[rid.0 as usize].state != ResultState::Unsent {
            return false;
        }
        self.journal
            .append(&StateChange::ResultCancelled { rid: rid.0 });
        self.raw_cancel_unsent(rid);
        true
    }

    /// Validates `wu` with the quorum's canonical fingerprint
    /// (transitioner outcome).
    pub fn mark_wu_validated(&mut self, wu: WuId, canonical: OutputFingerprint, now: SimTime) {
        self.journal.append(&StateChange::WuValidated {
            wu: wu.0,
            canonical: canonical.0,
            at_us: now.as_micros(),
        });
        self.raw_mark_wu_validated(wu, canonical, now);
    }

    /// Fails `wu`: `max_total_results` exhausted without a quorum.
    pub fn mark_wu_failed(&mut self, wu: WuId, now: SimTime) {
        self.journal.append(&StateChange::WuFailed {
            wu: wu.0,
            at_us: now.as_micros(),
        });
        self.raw_mark_wu_failed(wu, now);
    }

    /// Sets (or clears, with `None`) the trust policy's override of the
    /// spec's `min_quorum` for `wu`. No-op when unchanged, so repeated
    /// decisions don't bloat the WAL.
    pub fn set_quorum_override(&mut self, wu: WuId, quorum: Option<u32>) {
        if self.wus[wu.0 as usize].quorum_override == quorum {
            return;
        }
        self.journal
            .append(&StateChange::WuQuorumOverride { wu: wu.0, quorum });
        self.raw_set_quorum_override(wu, quorum);
    }

    // ----- raw appliers (shared by live mutators and WAL replay) ----------

    fn raw_insert_workunit(&mut self, spec: WorkUnitSpec, now: SimTime) {
        let id = WuId(self.wus.len() as u32);
        self.wus.push(WorkUnit {
            id,
            spec,
            state: WuState::Active,
            canonical: None,
            results_created: 0,
            created_at: now,
            finished_at: None,
            quorum_override: None,
        });
    }

    fn raw_create_result(&mut self, wu: WuId) {
        let id = ResultId(self.results.len() as u32);
        self.results.push(ResultRec {
            id,
            wu,
            state: ResultState::Unsent,
            client: None,
            sent_at: None,
            report_deadline: None,
            reported_at: None,
            outcome: None,
            fingerprint: None,
        });
        self.unsent.insert(id);
        self.by_wu.entry(wu).or_default().push(id);
        self.wus[wu.0 as usize].results_created += 1;
    }

    fn raw_mark_sent(&mut self, rid: ResultId, client: ClientId, now: SimTime, deadline: SimTime) {
        let r = &mut self.results[rid.0 as usize];
        r.state = ResultState::InProgress;
        r.client = Some(client);
        r.sent_at = Some(now);
        r.report_deadline = Some(deadline);
        self.unsent.remove(&rid);
        *self.live_by_client.entry(client).or_insert(0) += 1;
    }

    fn raw_mark_reported(
        &mut self,
        rid: ResultId,
        outcome: ResultOutcome,
        fingerprint: Option<OutputFingerprint>,
        now: SimTime,
    ) {
        let r = &mut self.results[rid.0 as usize];
        r.state = ResultState::Over;
        r.outcome = Some(outcome);
        r.fingerprint = fingerprint;
        r.reported_at = Some(now);
        if let Some(c) = r.client {
            if let Some(n) = self.live_by_client.get_mut(&c) {
                *n = n.saturating_sub(1);
            }
        }
    }

    fn raw_cancel_unsent(&mut self, rid: ResultId) {
        let r = &mut self.results[rid.0 as usize];
        r.state = ResultState::Over;
        r.outcome = Some(ResultOutcome::WuDone);
        self.unsent.remove(&rid);
    }

    fn raw_mark_wu_validated(&mut self, wu: WuId, canonical: OutputFingerprint, now: SimTime) {
        let w = &mut self.wus[wu.0 as usize];
        w.state = WuState::Validated;
        w.canonical = Some(canonical);
        w.finished_at = Some(now);
    }

    fn raw_mark_wu_failed(&mut self, wu: WuId, now: SimTime) {
        let w = &mut self.wus[wu.0 as usize];
        w.state = WuState::Failed;
        w.finished_at = Some(now);
    }

    fn raw_set_quorum_override(&mut self, wu: WuId, quorum: Option<u32>) {
        self.wus[wu.0 as usize].quorum_override = quorum;
    }

    // ----- WAL replay + snapshots -----------------------------------------

    /// Applies one replayed change record. Returns `Ok(true)` when the
    /// record belongs to this table and was applied, `Ok(false)` when
    /// it belongs to another subsystem (credit, assimilator, tracker).
    pub fn apply_change(&mut self, c: &StateChange) -> Result<bool, WireError> {
        match c {
            StateChange::WuInserted { at_us, spec, .. } => {
                let spec = WorkUnitSpec::from_bytes(spec)?;
                self.raw_insert_workunit(spec, SimTime::from_micros(*at_us));
            }
            StateChange::ResultCreated { wu, .. } => {
                self.raw_create_result(WuId(*wu));
            }
            StateChange::ResultSent {
                rid,
                client,
                at_us,
                deadline_us,
            } => {
                self.raw_mark_sent(
                    ResultId(*rid),
                    ClientId(*client),
                    SimTime::from_micros(*at_us),
                    SimTime::from_micros(*deadline_us),
                );
            }
            StateChange::ResultReported {
                rid,
                outcome,
                fingerprint,
                at_us,
            } => {
                self.raw_mark_reported(
                    ResultId(*rid),
                    ResultOutcome::from_wire(*outcome)?,
                    fingerprint.map(OutputFingerprint),
                    SimTime::from_micros(*at_us),
                );
            }
            StateChange::ResultCancelled { rid } => {
                self.raw_cancel_unsent(ResultId(*rid));
            }
            StateChange::WuValidated {
                wu,
                canonical,
                at_us,
            } => {
                self.raw_mark_wu_validated(
                    WuId(*wu),
                    OutputFingerprint(*canonical),
                    SimTime::from_micros(*at_us),
                );
            }
            StateChange::WuFailed { wu, at_us } => {
                self.raw_mark_wu_failed(WuId(*wu), SimTime::from_micros(*at_us));
            }
            StateChange::WuQuorumOverride { wu, quorum } => {
                self.raw_set_quorum_override(WuId(*wu), *quorum);
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Canonical snapshot of the two row tables. The secondary indexes
    /// are derived and excluded, so two equal databases encode to
    /// byte-identical vectors (the recovery audit's comparison).
    pub fn encode_state(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(64 + self.wus.len() * 64 + self.results.len() * 32);
        e.u32(self.wus.len() as u32);
        for w in &self.wus {
            e.bytes(&w.spec.to_bytes());
            e.u8(w.state.to_wire());
            e.opt_u64(w.canonical.map(|f| f.0));
            e.u32(w.results_created);
            e.u64(w.created_at.as_micros());
            e.opt_u64(w.finished_at.map(SimTime::as_micros));
            e.opt_u32(w.quorum_override);
        }
        e.u32(self.results.len() as u32);
        for r in &self.results {
            e.u32(r.wu.0);
            e.u8(r.state.to_wire());
            e.opt_u32(r.client.map(|c| c.0));
            e.opt_u64(r.sent_at.map(SimTime::as_micros));
            e.opt_u64(r.report_deadline.map(SimTime::as_micros));
            e.opt_u64(r.reported_at.map(SimTime::as_micros));
            match r.outcome {
                None => e.bool(false),
                Some(o) => {
                    e.bool(true);
                    e.u8(o.to_wire());
                }
            }
            e.opt_u64(r.fingerprint.map(|f| f.0));
        }
        e.into_vec()
    }

    /// Rebuilds a database from an [`Db::encode_state`] snapshot
    /// section, reconstructing every secondary index. The journal
    /// handle starts disabled.
    pub fn decode_state(b: &[u8]) -> Result<Db, WireError> {
        let mut d = Dec::new(b);
        let n_wus = d.u32()? as usize;
        let mut wus = Vec::with_capacity(n_wus.min(1 << 16));
        for i in 0..n_wus {
            let spec = WorkUnitSpec::from_bytes(&d.bytes()?)?;
            wus.push(WorkUnit {
                id: WuId(i as u32),
                spec,
                state: WuState::from_wire(d.u8()?)?,
                canonical: d.opt_u64()?.map(OutputFingerprint),
                results_created: d.u32()?,
                created_at: SimTime::from_micros(d.u64()?),
                finished_at: d.opt_u64()?.map(SimTime::from_micros),
                quorum_override: d.opt_u32()?,
            });
        }
        let n_results = d.u32()? as usize;
        let mut results = Vec::with_capacity(n_results.min(1 << 16));
        for i in 0..n_results {
            let wu = WuId(d.u32()?);
            let state = ResultState::from_wire(d.u8()?)?;
            let client = d.opt_u32()?.map(ClientId);
            let sent_at = d.opt_u64()?.map(SimTime::from_micros);
            let report_deadline = d.opt_u64()?.map(SimTime::from_micros);
            let reported_at = d.opt_u64()?.map(SimTime::from_micros);
            let outcome = if d.bool()? {
                Some(ResultOutcome::from_wire(d.u8()?)?)
            } else {
                None
            };
            let fingerprint = d.opt_u64()?.map(OutputFingerprint);
            results.push(ResultRec {
                id: ResultId(i as u32),
                wu,
                state,
                client,
                sent_at,
                report_deadline,
                reported_at,
                outcome,
                fingerprint,
            });
        }
        d.finish()?;

        // Rebuild the derived indexes. Iterating results in id order
        // reproduces the per-WU creation order `by_wu` accumulated live.
        let mut unsent = BTreeSet::new();
        let mut by_wu: HashMap<WuId, Vec<ResultId>> = HashMap::new();
        let mut live_by_client: HashMap<ClientId, u32> = HashMap::new();
        for r in &results {
            by_wu.entry(r.wu).or_default().push(r.id);
            match r.state {
                ResultState::Unsent => {
                    unsent.insert(r.id);
                }
                ResultState::InProgress => {
                    if let Some(c) = r.client {
                        *live_by_client.entry(c).or_insert(0) += 1;
                    }
                }
                ResultState::Over => {}
            }
        }
        Ok(Db {
            wus,
            results,
            unsent,
            by_wu,
            live_by_client,
            journal: Journal::disabled(),
        })
    }

    /// Input files of a result's work unit.
    pub fn inputs_of(&self, rid: ResultId) -> &[FileRef] {
        let wu = self.results[rid.0 as usize].wu;
        &self.wus[wu.0 as usize].spec.inputs
    }

    /// True when every WU is validated or failed.
    pub fn all_wus_terminal(&self) -> bool {
        self.wus
            .iter()
            .all(|w| matches!(w.state, WuState::Validated | WuState::Failed))
    }

    /// Count of WUs in a given state.
    pub fn count_state(&self, state: WuState) -> usize {
        self.wus.iter().filter(|w| w.state == state).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workunit::WorkUnitSpec;

    fn spec(name: &str) -> WorkUnitSpec {
        WorkUnitSpec::basic(name, "app", 1e9)
    }

    #[test]
    fn insert_creates_replicas() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        assert_eq!(db.results_of(wu).len(), 2);
        assert_eq!(db.n_unsent(), 2);
        assert_eq!(db.wu(wu).results_created, 2);
    }

    #[test]
    fn send_and_report_lifecycle() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        let rid = db.results_of(wu)[0];
        let c = ClientId(1);
        db.mark_sent(rid, c, SimTime::ZERO, SimTime::from_secs(100));
        assert_eq!(db.live_count(c), 1);
        assert!(db.client_has_wu(c, wu));
        assert_eq!(db.n_unsent(), 1);
        assert!(db.mark_reported(
            rid,
            ResultOutcome::Success,
            Some(OutputFingerprint(7)),
            SimTime::from_secs(50),
        ));
        assert_eq!(db.live_count(c), 0);
        assert!(db.result(rid).is_success());
        // Double report ignored.
        assert!(!db.mark_reported(rid, ResultOutcome::Error, None, SimTime::from_secs(60)));
    }

    #[test]
    fn one_result_per_client_per_wu_rule_data() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        let rids = db.results_of(wu).to_vec();
        db.mark_sent(rids[0], ClientId(1), SimTime::ZERO, SimTime::from_secs(100));
        assert!(db.client_has_wu(ClientId(1), wu));
        assert!(!db.client_has_wu(ClientId(2), wu));
    }

    #[test]
    fn timeout_marks_noreply() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        let rid = db.results_of(wu)[0];
        db.mark_sent(rid, ClientId(1), SimTime::ZERO, SimTime::from_secs(10));
        assert!(db.mark_timed_out(rid, SimTime::from_secs(10)));
        assert_eq!(db.result(rid).outcome, Some(ResultOutcome::NoReply));
        assert!(!db.mark_timed_out(rid, SimTime::from_secs(11)));
    }

    #[test]
    fn cancel_unsent_only_touches_unsent() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        let rids = db.results_of(wu).to_vec();
        db.mark_sent(rids[0], ClientId(1), SimTime::ZERO, SimTime::from_secs(10));
        assert!(!db.cancel_unsent(rids[0]));
        assert!(db.cancel_unsent(rids[1]));
        assert_eq!(db.n_unsent(), 0);
        assert_eq!(db.result(rids[1]).outcome, Some(ResultOutcome::WuDone));
    }

    #[test]
    fn extra_result_creation() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        let extra = db.create_result(wu);
        assert_eq!(db.results_of(wu).len(), 3);
        assert_eq!(db.wu(wu).results_created, 3);
        assert!(db.unsent_results().any(|r| r == extra));
    }

    #[test]
    fn quorum_override_changes_effective_quorum() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        assert_eq!(db.wu(wu).effective_quorum(), 2);
        db.set_quorum_override(wu, Some(1));
        assert_eq!(db.wu(wu).effective_quorum(), 1);
        db.set_quorum_override(wu, None);
        assert_eq!(db.wu(wu).effective_quorum(), 2);
    }

    #[test]
    fn terminal_tracking() {
        let mut db = Db::new();
        let wu = db.insert_workunit(spec("a"), SimTime::ZERO);
        assert!(!db.all_wus_terminal());
        db.wu_mut(wu).state = WuState::Validated;
        assert!(db.all_wus_terminal());
        assert_eq!(db.count_state(WuState::Validated), 1);
    }

    /// Drives `db` through every journaled mutator.
    fn exercise(db: &mut Db) {
        let a = db.insert_workunit(spec("a"), SimTime::ZERO);
        let b = db.insert_workunit(spec("b"), SimTime::from_secs(1));
        let ra = db.results_of(a).to_vec();
        let rb = db.results_of(b).to_vec();
        db.mark_sent(
            ra[0],
            ClientId(1),
            SimTime::from_secs(2),
            SimTime::from_secs(100),
        );
        db.mark_sent(
            ra[1],
            ClientId(2),
            SimTime::from_secs(3),
            SimTime::from_secs(100),
        );
        db.mark_reported(
            ra[0],
            ResultOutcome::Success,
            Some(OutputFingerprint(7)),
            SimTime::from_secs(10),
        );
        db.mark_reported(
            ra[1],
            ResultOutcome::Success,
            Some(OutputFingerprint(7)),
            SimTime::from_secs(11),
        );
        db.mark_wu_validated(a, OutputFingerprint(7), SimTime::from_secs(11));
        db.mark_sent(
            rb[0],
            ClientId(3),
            SimTime::from_secs(4),
            SimTime::from_secs(50),
        );
        db.mark_timed_out(rb[0], SimTime::from_secs(50));
        let extra = db.create_result(b);
        db.cancel_unsent(extra);
        db.set_quorum_override(b, Some(1));
        db.set_quorum_override(b, Some(1)); // unchanged: no record
        db.mark_wu_failed(b, SimTime::from_secs(60));
    }

    #[test]
    fn wal_replay_reproduces_live_state() {
        use vmr_durable::{recover, DurabilityPlan};
        let j = Journal::new(&DurabilityPlan::new(0.0)).unwrap();
        let mut live = Db::new();
        live.set_journal(j.clone());
        exercise(&mut live);
        j.commit();
        let r = recover(&j.log_bytes()).unwrap();
        assert!(!r.tail.is_empty());
        let mut replayed = Db::new();
        for c in &r.tail {
            assert!(replayed.apply_change(c).unwrap(), "unhandled {c:?}");
        }
        assert_eq!(replayed.encode_state(), live.encode_state());
        assert_eq!(replayed.n_unsent(), live.n_unsent());
        assert_eq!(
            replayed.live_count(ClientId(1)),
            live.live_count(ClientId(1))
        );
    }

    #[test]
    fn snapshot_round_trip_is_canonical() {
        let mut db = Db::new();
        exercise(&mut db);
        let enc = db.encode_state();
        let back = Db::decode_state(&enc).unwrap();
        assert_eq!(back.encode_state(), enc);
        assert_eq!(back.n_wus(), db.n_wus());
        assert_eq!(back.n_results(), db.n_results());
        assert_eq!(back.n_unsent(), db.n_unsent());
        for wu in db.wu_ids() {
            assert_eq!(back.results_of(wu), db.results_of(wu));
            assert_eq!(back.wu(wu).state, db.wu(wu).state);
            assert_eq!(back.wu(wu).canonical, db.wu(wu).canonical);
        }
        // Unexercised journaled mutators still work on a decoded db.
        let mut back = back;
        let c = back.create_result(WuId(0));
        assert!(back.cancel_unsent(c));
    }
}
