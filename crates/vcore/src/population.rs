//! Synthetic volunteer populations in the style of Anderson & Fedak's
//! BOINC host census ("The Computational and Storage Potential of
//! Volunteer Computing", CCGrid'06): a heavy-tailed mixture of access
//! classes spread over oversubscribed ISP tiers, rather than anything
//! resembling the uniform 100 Mbit Emulab testbed.
//!
//! [`PopulationSpec::generate`] draws a standalone population (used by
//! the netsim benches); [`PopulationSpec::generate_into`] draws the
//! same population into an existing topology so an engine can place its
//! server host on the core first (used by the engine builder's
//! `.population(spec)`).

use crate::host::{Availability, HostProfile};
use vmr_netsim::{HostId, HostLink, NatType, TierId, TierLink, Topology};

/// One access/compute class in a volunteer population.
#[derive(Clone, Debug)]
pub struct VolunteerClass {
    /// Class label (becomes the generated hosts' profile model name).
    pub name: &'static str,
    /// Relative share of the population drawing this class.
    pub weight: f64,
    /// Access downlink, megabit/s (before per-host jitter).
    pub down_mbit: f64,
    /// Access uplink, megabit/s (before per-host jitter).
    pub up_mbit: f64,
    /// One-way access latency, seconds.
    pub latency_s: f64,
    /// Sustained compute speed, FLOPS.
    pub flops_per_sec: f64,
    /// Mean (on, off) period lengths in seconds of the owner-usage
    /// availability pattern; `None` = always-on machine.
    pub availability: Option<(f64, f64)>,
}

/// Parameters of a synthetic internet-scale volunteer population:
/// `hosts` volunteers drawn from a class mixture, spread over `isps`
/// oversubscribed aggregation tiers behind a shared backbone.
#[derive(Clone, Debug)]
pub struct PopulationSpec {
    /// Number of volunteer hosts to generate.
    pub hosts: usize,
    /// Deterministic generator seed.
    pub seed: u64,
    /// Number of ISP/AS aggregation tiers.
    pub isps: usize,
    /// Contention ratio of an ISP tier: tier capacity = the sum of its
    /// subscribers' access downlinks divided by this (8–20 is typical
    /// for consumer broadband).
    pub isp_oversubscription: f64,
    /// One-way latency of an ISP aggregation hop, seconds.
    pub isp_latency_s: f64,
    /// Backbone capacity = the sum of tier capacities divided by this.
    pub backbone_oversubscription: f64,
    /// One-way backbone traversal latency, seconds.
    pub backbone_latency_s: f64,
    /// The class mixture (weights need not sum to 1).
    pub classes: Vec<VolunteerClass>,
}

/// One generated volunteer: its class, tier placement, access rates and
/// a ready-made [`HostProfile`] for the vcore scheduler.
#[derive(Clone, Debug)]
pub struct GeneratedHost {
    /// Index into [`PopulationSpec::classes`].
    pub class: usize,
    /// The ISP tier the host subscribes to.
    pub tier: TierId,
    /// Jittered access downlink, megabit/s.
    pub down_mbit: f64,
    /// Jittered access uplink, megabit/s.
    pub up_mbit: f64,
    /// Compute/availability profile for the BOINC model.
    pub profile: HostProfile,
}

/// A generated volunteer population: the hierarchical topology plus
/// per-host metadata, index-aligned with the topology's `HostId`s.
#[derive(Debug)]
pub struct HostPopulation {
    /// Hierarchical network (host access links → ISP tiers → backbone).
    pub topo: Topology,
    /// Per-host metadata; `hosts[i]` describes `HostId(i as u32)`.
    pub hosts: Vec<GeneratedHost>,
}

/// splitmix64 — small deterministic generator, no external dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)`.
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

impl PopulationSpec {
    /// An Anderson-&-Fedak-flavoured consumer-internet mixture: mostly
    /// DSL/cable with a slow satellite/dial-up floor and a fibre/campus
    /// tail, giving the measured heavy-tailed access-bandwidth
    /// distribution (median a few Mbit, p95 tens of Mbit).
    pub fn internet(hosts: usize, seed: u64) -> Self {
        PopulationSpec {
            hosts,
            seed,
            isps: (hosts / 64).clamp(1, 2048),
            isp_oversubscription: 8.0,
            isp_latency_s: 0.008,
            backbone_oversubscription: 3.0,
            backbone_latency_s: 0.02,
            classes: vec![
                VolunteerClass {
                    name: "satellite",
                    weight: 0.05,
                    down_mbit: 0.5,
                    up_mbit: 0.25,
                    latency_s: 0.15,
                    flops_per_sec: 1.0e9,
                    availability: Some((1_800.0, 1_800.0)),
                },
                VolunteerClass {
                    name: "dsl",
                    weight: 0.40,
                    down_mbit: 4.0,
                    up_mbit: 0.5,
                    latency_s: 0.03,
                    flops_per_sec: 1.5e9,
                    availability: Some((3_600.0, 1_800.0)),
                },
                VolunteerClass {
                    name: "cable",
                    weight: 0.35,
                    down_mbit: 16.0,
                    up_mbit: 1.0,
                    latency_s: 0.02,
                    flops_per_sec: 2.4e9,
                    availability: Some((7_200.0, 3_600.0)),
                },
                VolunteerClass {
                    name: "fiber",
                    weight: 0.15,
                    down_mbit: 100.0,
                    up_mbit: 20.0,
                    latency_s: 0.005,
                    flops_per_sec: 3.0e9,
                    availability: Some((14_400.0, 3_600.0)),
                },
                VolunteerClass {
                    name: "campus",
                    weight: 0.05,
                    down_mbit: 100.0,
                    up_mbit: 100.0,
                    latency_s: 0.002,
                    flops_per_sec: 3.2e9,
                    availability: None,
                },
            ],
        }
    }

    /// Draws the population. Deterministic in the spec: the same spec
    /// yields bit-identical topologies and profiles.
    pub fn generate(&self) -> HostPopulation {
        let mut topo = Topology::new();
        let hosts = self
            .generate_into(&mut topo)
            .into_iter()
            .map(|(_, h)| h)
            .collect();
        HostPopulation { topo, hosts }
    }

    /// Draws the population into an existing topology, returning each
    /// generated host paired with the [`HostId`] it received. The draw
    /// sequence is independent of whatever `topo` already contains, so
    /// an engine can place its server host on the core first and still
    /// get the exact hosts [`PopulationSpec::generate`] would produce.
    ///
    /// Two passes: classes/ISPs/jitters are sampled first so every tier
    /// capacity can be sized from its actual subscriber load (sum of
    /// member downlinks over the contention ratio), then the topology is
    /// built tiers-first (tier ids must exist before `add_host_in`).
    pub fn generate_into(&self, topo: &mut Topology) -> Vec<(HostId, GeneratedHost)> {
        assert!(!self.classes.is_empty(), "population needs ≥ 1 class");
        let total_w: f64 = self.classes.iter().map(|c| c.weight).sum();
        let isps = self.isps.max(1);
        let mut rng = self.seed ^ 0x5851_f42d_4c95_7f2d;
        struct Draw {
            class: usize,
            isp: usize,
            bw_jitter: f64,
            cpu_jitter: f64,
        }
        let mut draws = Vec::with_capacity(self.hosts);
        let mut isp_down_mbit = vec![0.0f64; isps];
        for _ in 0..self.hosts {
            let mut roll = unit_f64(&mut rng) * total_w;
            let mut class = self.classes.len() - 1;
            for (i, c) in self.classes.iter().enumerate() {
                if roll < c.weight {
                    class = i;
                    break;
                }
                roll -= c.weight;
            }
            let isp = (splitmix64(&mut rng) % isps as u64) as usize;
            let bw_jitter = 0.75 + 0.5 * unit_f64(&mut rng);
            let cpu_jitter = 0.75 + 0.5 * unit_f64(&mut rng);
            isp_down_mbit[isp] += self.classes[class].down_mbit * bw_jitter;
            draws.push(Draw {
                class,
                isp,
                bw_jitter,
                cpu_jitter,
            });
        }
        let mut tiers = Vec::with_capacity(isps);
        let mut total_gbit = 0.0;
        for &down in &isp_down_mbit {
            let gbit = (down / 1_000.0 / self.isp_oversubscription).max(0.001);
            total_gbit += gbit;
            tiers.push(topo.add_tier(TierLink::symmetric_gbit(gbit, self.isp_latency_s)));
        }
        topo.set_backbone(
            total_gbit / self.backbone_oversubscription * 1e9 / 8.0,
            self.backbone_latency_s,
        );
        let mut hosts = Vec::with_capacity(self.hosts);
        for d in draws {
            let c = &self.classes[d.class];
            let down_mbit = c.down_mbit * d.bw_jitter;
            let up_mbit = c.up_mbit * d.bw_jitter;
            let id = topo.add_host_in(
                tiers[d.isp],
                HostLink::asymmetric_mbit(down_mbit, up_mbit, c.latency_s),
            );
            hosts.push((
                id,
                GeneratedHost {
                    class: d.class,
                    tier: tiers[d.isp],
                    down_mbit,
                    up_mbit,
                    profile: HostProfile {
                        model: c.name.into(),
                        flops_per_sec: c.flops_per_sec * d.cpu_jitter,
                        slots: 1,
                        nat: NatType::Open,
                        availability: c.availability.map(|(on_mean_s, off_mean_s)| Availability {
                            on_mean_s,
                            off_mean_s,
                        }),
                    },
                },
            ));
        }
        hosts
    }
}

impl HostPopulation {
    /// Number of generated hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Host count per class index.
    pub fn class_counts(&self, n_classes: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_classes];
        for h in &self.hosts {
            counts[h.class] += 1;
        }
        counts
    }

    /// Mean access downlink across the population, megabit/s.
    pub fn mean_down_mbit(&self) -> f64 {
        if self.hosts.is_empty() {
            return 0.0;
        }
        self.hosts.iter().map(|h| h.down_mbit).sum::<f64>() / self.hosts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_deterministic() {
        let a = PopulationSpec::internet(500, 42).generate();
        let b = PopulationSpec::internet(500, 42).generate();
        assert_eq!(a.hosts.len(), b.hosts.len());
        for (x, y) in a.hosts.iter().zip(&b.hosts) {
            assert_eq!(x.class, y.class);
            assert_eq!(x.tier, y.tier);
            assert_eq!(x.down_mbit.to_bits(), y.down_mbit.to_bits());
            assert_eq!(
                x.profile.flops_per_sec.to_bits(),
                y.profile.flops_per_sec.to_bits()
            );
        }
        // A different seed actually changes the draw.
        let c = PopulationSpec::internet(500, 43).generate();
        assert!(a
            .hosts
            .iter()
            .zip(&c.hosts)
            .any(|(x, y)| x.down_mbit.to_bits() != y.down_mbit.to_bits()));
    }

    #[test]
    fn generate_into_matches_generate_with_shifted_ids() {
        let spec = PopulationSpec::internet(300, 11);
        let standalone = spec.generate();
        // Pre-populate the target topology with a server host on the
        // core, as the engine builder does.
        let mut topo = Topology::new();
        let server = topo.add_host(HostLink::symmetric_mbit(100.0, 0.000_5));
        assert_eq!(server, HostId(0));
        let placed = spec.generate_into(&mut topo);
        assert_eq!(placed.len(), standalone.hosts.len());
        for (i, ((id, got), want)) in placed.iter().zip(&standalone.hosts).enumerate() {
            // Ids are shifted by exactly the pre-existing host count.
            assert_eq!(id.0 as usize, i + 1);
            assert_eq!(got.class, want.class);
            assert_eq!(got.tier, want.tier);
            assert_eq!(got.down_mbit.to_bits(), want.down_mbit.to_bits());
            assert_eq!(
                got.profile.flops_per_sec.to_bits(),
                want.profile.flops_per_sec.to_bits()
            );
            assert_eq!(topo.tier_of(*id), Some(got.tier));
        }
        // Tier structure is identical; the server stays on the core.
        assert_eq!(topo.num_tiers(), standalone.topo.num_tiers());
        assert_eq!(topo.tier_of(server), None);
        assert!(topo.is_hierarchical());
    }

    #[test]
    fn population_class_mix_tracks_weights() {
        let spec = PopulationSpec::internet(10_000, 7);
        let pop = spec.generate();
        let total_w: f64 = spec.classes.iter().map(|c| c.weight).sum();
        let counts = pop.class_counts(spec.classes.len());
        for (c, &n) in spec.classes.iter().zip(&counts) {
            let expect = c.weight / total_w;
            let got = n as f64 / 10_000.0;
            assert!(
                (got - expect).abs() < 0.03,
                "{}: drew {} expected ~{}",
                c.name,
                got,
                expect
            );
        }
    }

    #[test]
    fn population_bandwidth_is_heavy_tailed() {
        let pop = PopulationSpec::internet(10_000, 1).generate();
        let mut down: Vec<f64> = pop.hosts.iter().map(|h| h.down_mbit).collect();
        down.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let median = down[down.len() / 2];
        let p95 = down[down.len() * 95 / 100];
        assert!(
            p95 / median > 4.0,
            "tail too flat: median {median}, p95 {p95}"
        );
    }

    #[test]
    fn population_topology_is_oversubscribed_hierarchy() {
        let spec = PopulationSpec::internet(2_000, 9);
        let pop = spec.generate();
        assert!(pop.topo.is_hierarchical());
        assert_eq!(pop.topo.num_tiers(), spec.isps);
        // Every tier with subscribers publishes less capacity than the
        // sum of its members' access downlinks (contention ratio > 1).
        let mut member_down = vec![0.0f64; spec.isps];
        for h in &pop.hosts {
            member_down[h.tier.0 as usize] += h.down_mbit * 1e6 / 8.0;
        }
        for (i, &sum) in member_down.iter().enumerate() {
            if sum > 0.0 {
                let tier = pop.topo.tier_link(TierId(i as u32));
                assert!(tier.down_bytes_per_sec < sum, "tier {i} not oversubscribed");
            }
        }
        // Availability classes propagate into the vcore profiles; the
        // always-on campus class keeps `None`.
        assert!(pop.hosts.iter().any(|h| h.profile.availability.is_some()));
        assert!(pop
            .hosts
            .iter()
            .filter(|h| h.profile.model == "campus")
            .all(|h| h.profile.availability.is_none()));
    }
}
