//! # vmr-vcore — a BOINC-like volunteer-computing middleware model
//!
//! A from-scratch implementation of the mechanisms the paper builds on
//! (it extended BOINC server 6.11 / client 6.11–6.13):
//!
//! * **Project database** ([`db::Db`]) — work units, replica results,
//!   and the indexes the daemons use.
//! * **Scheduler** ([`sched`]) — pull-model work dispatch honouring
//!   BOINC's one-replica-per-host rule.
//! * **Transitioner** ([`transition`]) — replica lifecycle: retries on
//!   error/timeout/disagreement, failure on budget exhaustion.
//! * **Validator** ([`validate`]) — replication with quorum of identical
//!   outputs (§III.B).
//! * **Client** (inside [`engine`]) — work fetch with **exponential
//!   backoff** (§IV.B's 600 s cap), download → execute → upload →
//!   report-at-next-RPC, peer downloads with server fall-back.
//! * **Fault injection** ([`fault`]) — byzantine outputs, transfer
//!   failures, churn.
//!
//! The engine is project-agnostic; vmr-core layers BOINC-MR's MapReduce
//! orchestration on top through the [`engine::Policy`] hooks.

#![warn(missing_docs)]

pub mod assimilate;
pub mod backoff;
pub mod config;
pub mod credit;
pub mod db;
pub mod engine;
pub mod fault;
pub mod host;
pub mod population;
pub mod sched;
pub mod shard;
pub mod transition;
pub mod types;
pub mod validate;
pub mod workunit;

pub use assimilate::{Assimilated, Assimilator};
pub use backoff::Backoff;
pub use config::{NetConfig, Preset, ProjectConfig, ShardConfig};
pub use credit::{claimed_credit, CreditLedger, HostAccount};
pub use db::Db;
pub use engine::{
    clique_fingerprint, honest_fingerprint, Engine, EngineStats, Ev, NullPolicy, Policy,
    RelayChoice, ServedFile,
};
pub use engine::{BuildError, EngineBuilder};
pub use fault::{Corruption, FaultIndex, FaultPlan};
pub use host::{Availability, HostProfile, ValidationCounts};
pub use population::{GeneratedHost, HostPopulation, PopulationSpec, VolunteerClass};
pub use sched::Feeder;
pub use shard::{run_transition_pass, serve_batch, BatchGrant, WorkerPool};
pub use transition::{apply_transition, plan_transition, Transition, TransitionPlan};
pub use types::{ClientId, FileRef, FileSource, OutputFingerprint, ResultId, WuId};
pub use validate::{check_quorum, Verdict};
pub use vmr_shuffle::{FetchObs, ShuffleConfig, ShuffleStrategy, StrategyKind};
pub use vmr_trust::{
    Outcome as TrustOutcome, ReplicationDecision, ReplicationPolicy, TrustConfig, TrustLedger,
};
pub use workunit::{ResultOutcome, ResultRec, ResultState, WorkUnit, WorkUnitSpec, WuState};
