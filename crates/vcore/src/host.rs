//! Host (volunteer machine) profiles.
//!
//! The paper's testbed has two node types (§IV.A):
//! * `pc3001` — Dell PowerEdge 2850, 3 GHz Pentium IV Xeon, 1 GB RAM;
//! * `pcr200` — Dell PowerEdge r200, quad-core Intel Xeon X3220, 8 GB.
//!
//! We characterize a host by sustained FLOPS (scales compute time), the
//! number of concurrent task slots the BOINC client uses, and its NAT
//! class (always [`NatType::Open`] on the testbed).

use serde::{Deserialize, Serialize};
use vmr_netsim::NatType;

/// Static performance/connectivity description of a volunteer machine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HostProfile {
    /// Human-readable type name.
    pub model: String,
    /// Sustained FLOPS for project workloads.
    pub flops_per_sec: f64,
    /// Concurrent tasks the client runs (≈ cores BOINC is allowed).
    pub slots: u32,
    /// NAT/firewall class of the host's connection.
    #[serde(skip, default = "default_nat")]
    pub nat: NatType,
    /// Volunteer availability: `None` = dedicated machine (the Emulab
    /// testbed); `Some` = the host alternates between computing and
    /// being used by its owner (execution pauses while suspended).
    pub availability: Option<Availability>,
}

/// An on/off availability pattern with exponentially distributed
/// period lengths — the standard model for volunteer hosts, whose
/// owners preempt BOINC whenever they use the machine.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Availability {
    /// Mean length of a computing (available) period, seconds.
    pub on_mean_s: f64,
    /// Mean length of a suspended period, seconds.
    pub off_mean_s: f64,
}

impl Availability {
    /// Long-run fraction of time the host computes.
    pub fn duty_cycle(&self) -> f64 {
        self.on_mean_s / (self.on_mean_s + self.off_mean_s)
    }
}

/// Per-host validation outcome tally. The engine keeps one per client
/// regardless of whether the trust subsystem is enabled, and exposes
/// the population totals as `vcore.host_outcomes` metrics — the raw
/// material reputation systems (and project operators) work from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ValidationCounts {
    /// Results that agreed with the canonical fingerprint.
    pub valid: u64,
    /// Successful-looking results whose fingerprint dissented.
    pub invalid: u64,
    /// Client errors and deadline misses.
    pub errors: u64,
}

impl ValidationCounts {
    /// All outcomes observed for this host.
    pub fn total(&self) -> u64 {
        self.valid + self.invalid + self.errors
    }
}

/// Deserialization default for [`HostProfile::nat`] (referenced from the
/// `#[serde(default)]` attribute; kept callable so the vendored serde
/// stub, which ignores field attributes, does not orphan it).
pub fn default_nat() -> NatType {
    NatType::Open
}

impl HostProfile {
    /// The testbed's Pentium-IV Xeon node (single task slot).
    ///
    /// A 3 GHz NetBurst Xeon sustains roughly 1.5 GFLOPS on integer-ish
    /// text workloads once memory stalls are accounted for.
    pub fn pc3001() -> Self {
        HostProfile {
            model: "pc3001".into(),
            flops_per_sec: 1.5e9,
            slots: 1,
            nat: NatType::Open,
            availability: None,
        }
    }

    /// The testbed's quad-core Xeon X3220 node.
    ///
    /// Per-core throughput about 2.4 GFLOPS; BOINC runs one task per
    /// core.
    pub fn pcr200() -> Self {
        HostProfile {
            model: "pcr200".into(),
            flops_per_sec: 2.4e9,
            slots: 4,
            nat: NatType::Open,
            availability: None,
        }
    }

    /// Seconds to execute a task of `flops` FLOPs on one slot.
    pub fn compute_seconds(&self, flops: f64) -> f64 {
        flops / self.flops_per_sec
    }

    /// Returns a copy with a different NAT class (for §III.D ablations).
    pub fn with_nat(mut self, nat: NatType) -> Self {
        self.nat = nat;
        self
    }

    /// Returns a copy with an owner-usage availability pattern.
    pub fn with_availability(mut self, on_mean_s: f64, off_mean_s: f64) -> Self {
        self.availability = Some(Availability {
            on_mean_s,
            off_mean_s,
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_profiles() {
        let a = HostProfile::pc3001();
        let b = HostProfile::pcr200();
        assert_eq!(a.slots, 1);
        assert_eq!(b.slots, 4);
        assert!(b.flops_per_sec > a.flops_per_sec);
    }

    #[test]
    fn compute_time_scales_inversely() {
        let h = HostProfile::pc3001();
        let t1 = h.compute_seconds(3e9);
        let t2 = h.compute_seconds(6e9);
        assert!((t2 - 2.0 * t1).abs() < 1e-9);
        assert!((t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn availability_duty_cycle() {
        let a = Availability {
            on_mean_s: 3.0,
            off_mean_s: 1.0,
        };
        assert!((a.duty_cycle() - 0.75).abs() < 1e-12);
        let h = HostProfile::pc3001().with_availability(600.0, 300.0);
        assert!((h.availability.unwrap().duty_cycle() - 2.0 / 3.0).abs() < 1e-12);
        assert!(HostProfile::pc3001().availability.is_none());
    }

    #[test]
    fn with_nat_override() {
        let h = HostProfile::pc3001().with_nat(NatType::Symmetric);
        assert_eq!(h.nat, NatType::Symmetric);
    }

    #[test]
    fn validation_counts_tally() {
        let mut v = ValidationCounts::default();
        assert_eq!(v.total(), 0);
        v.valid += 3;
        v.invalid += 1;
        v.errors += 2;
        assert_eq!(v.total(), 6);
    }
}
