//! Transitioner decisions: drive each work unit through its lifecycle.
//!
//! After every report (and on deadline expiry) the transitioner decides,
//! per work unit:
//! 1. run the validator if enough successful results arrived;
//! 2. on quorum → mark validated, cancel now-redundant unsent replicas;
//! 3. otherwise, top the WU back up with fresh replicas so that the
//!    number of results that can still succeed reaches the effective
//!    quorum — unless `max_total_results` is exhausted, in which case
//!    the WU fails permanently.
//!
//! The effective quorum is the spec's `min_quorum` unless the trust
//! policy overrode it ([`crate::workunit::WorkUnit::effective_quorum`]):
//! a WU riding on a single trusted host validates from that one result.

use crate::db::Db;
use crate::types::{OutputFingerprint, ResultId, WuId};
use crate::validate::{check_quorum, Verdict};
use crate::workunit::{ResultState, WuState};
use vmr_desim::SimTime;

/// What the transitioner did to a work unit in one pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Transition {
    /// Nothing to do (quorum pending, enough replicas in flight).
    None,
    /// The WU just validated with this canonical fingerprint; the listed
    /// results agreed (and now hold credit-worthy canonical copies).
    Validated {
        /// Canonical output fingerprint.
        canonical: OutputFingerprint,
        /// Results whose outputs matched the canonical fingerprint.
        agreeing: Vec<ResultId>,
    },
    /// New replicas were created to replace errors/disagreements.
    Retried {
        /// The freshly created result ids.
        new_results: Vec<ResultId>,
    },
    /// The WU ran out of retry budget and failed.
    Failed,
}

/// A transitioner decision computed read-only against the database —
/// the *plan* half of the plan/apply split. Plans for distinct WUs are
/// independent (a WU's plan reads only its own rows), so the worker
/// pool ([`crate::shard::run_transition_pass`]) computes them in
/// parallel per shard and applies them sequentially in global WU-id
/// order, which keeps result-id allocation and the WAL record stream
/// bit-identical to a sequential pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransitionPlan {
    /// Nothing to do.
    None,
    /// Quorum reached: validate with `canonical`, credit `agreeing`,
    /// cancel the still-unsent replicas in `cancel`.
    Validate {
        /// Canonical output fingerprint.
        canonical: OutputFingerprint,
        /// Results whose outputs matched the canonical fingerprint.
        agreeing: Vec<ResultId>,
        /// Unsent replicas made redundant by the validation.
        cancel: Vec<ResultId>,
    },
    /// Create `n_new` fresh replicas to replace errors/disagreements.
    Retry {
        /// How many results to create.
        n_new: u32,
    },
    /// Retry budget exhausted: fail the WU permanently.
    Fail,
}

/// Computes the transitioner's decision for `wu` without touching the
/// database. Pure with respect to `db`: safe to evaluate for many WUs
/// concurrently over a shared `&Db`.
pub fn plan_transition(db: &Db, wu: WuId) -> TransitionPlan {
    if db.wu(wu).state != WuState::Active {
        return TransitionPlan::None;
    }
    let rids = db.results_of(wu);
    // Successful reports awaiting validation.
    let successes: Vec<ResultId> = rids
        .iter()
        .copied()
        .filter(|&r| db.result(r).is_success())
        .collect();
    let fingerprints: Vec<OutputFingerprint> = successes
        .iter()
        .map(|&r| {
            db.result(r)
                .fingerprint
                .expect("success without fingerprint")
        })
        .collect();
    let min_quorum = db.wu(wu).effective_quorum();

    if let Verdict::Valid {
        canonical,
        agreeing,
        ..
    } = check_quorum(&fingerprints, min_quorum)
    {
        let agreeing: Vec<ResultId> = agreeing.into_iter().map(|i| successes[i]).collect();
        // Unsent replicas are redundant once the WU validates;
        // in-progress ones will report as WuDone.
        let cancel: Vec<ResultId> = rids
            .iter()
            .copied()
            .filter(|&r| db.result(r).state == ResultState::Unsent)
            .collect();
        return TransitionPlan::Validate {
            canonical,
            agreeing,
            cancel,
        };
    }

    // No quorum yet. Count results that can still contribute towards a
    // quorum: live ones, plus the *largest agreeing group* of successes
    // (two disagreeing outputs can never both be part of one quorum).
    let live = rids.iter().filter(|&&r| db.result(r).is_live()).count() as u32;
    let max_group = {
        let mut best = 0u32;
        for fp in &fingerprints {
            let n = fingerprints.iter().filter(|g| *g == fp).count() as u32;
            best = best.max(n);
        }
        best
    };
    let potential = live + max_group;
    if potential >= min_quorum {
        return TransitionPlan::None;
    }
    let deficit = min_quorum - potential;
    let spec_max = db.wu(wu).spec.max_total_results;
    let created = db.wu(wu).results_created;
    let budget = spec_max.saturating_sub(created);
    if budget == 0 {
        return TransitionPlan::Fail;
    }
    TransitionPlan::Retry {
        n_new: deficit.min(budget),
    }
}

/// Applies a previously computed plan to the database, journaling every
/// mutation, and returns the [`Transition`] the engine's policy hooks
/// consume.
pub fn apply_transition(db: &mut Db, wu: WuId, plan: TransitionPlan, now: SimTime) -> Transition {
    match plan {
        TransitionPlan::None => Transition::None,
        TransitionPlan::Validate {
            canonical,
            agreeing,
            cancel,
        } => {
            db.mark_wu_validated(wu, canonical, now);
            for rid in cancel {
                db.cancel_unsent(rid);
            }
            Transition::Validated {
                canonical,
                agreeing,
            }
        }
        TransitionPlan::Retry { n_new } => {
            let new_results: Vec<ResultId> = (0..n_new).map(|_| db.create_result(wu)).collect();
            Transition::Retried { new_results }
        }
        TransitionPlan::Fail => {
            db.mark_wu_failed(wu, now);
            Transition::Failed
        }
    }
}

/// Runs one transitioner pass over `wu`. Mutates the database and
/// returns what changed so the engine can fire policy hooks.
/// Equivalent to [`plan_transition`] followed by [`apply_transition`].
pub fn transition_wu(db: &mut Db, wu: WuId, now: SimTime) -> Transition {
    let plan = plan_transition(db, wu);
    apply_transition(db, wu, plan, now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ClientId;
    use crate::workunit::{ResultOutcome, WorkUnitSpec};

    fn setup() -> (Db, WuId) {
        let mut db = Db::new();
        let wu = db.insert_workunit(WorkUnitSpec::basic("w", "app", 1e9), SimTime::ZERO);
        (db, wu)
    }

    fn send_and_report(db: &mut Db, rid: ResultId, client: u32, fp: u64) {
        db.mark_sent(
            rid,
            ClientId(client),
            SimTime::ZERO,
            SimTime::from_secs(10_000),
        );
        db.mark_reported(
            rid,
            ResultOutcome::Success,
            Some(OutputFingerprint(fp)),
            SimTime::from_secs(1),
        );
    }

    #[test]
    fn quorum_validates_wu() {
        let (mut db, wu) = setup();
        let rids = db.results_of(wu).to_vec();
        send_and_report(&mut db, rids[0], 0, 42);
        assert_eq!(
            transition_wu(&mut db, wu, SimTime::from_secs(1)),
            Transition::None
        );
        send_and_report(&mut db, rids[1], 1, 42);
        match transition_wu(&mut db, wu, SimTime::from_secs(2)) {
            Transition::Validated {
                canonical,
                agreeing,
            } => {
                assert_eq!(canonical, OutputFingerprint(42));
                assert_eq!(agreeing.len(), 2);
            }
            t => panic!("expected Validated, got {t:?}"),
        }
        assert_eq!(db.wu(wu).state, WuState::Validated);
        assert_eq!(db.wu(wu).finished_at, Some(SimTime::from_secs(2)));
        // Idempotent afterwards.
        assert_eq!(
            transition_wu(&mut db, wu, SimTime::from_secs(3)),
            Transition::None
        );
    }

    #[test]
    fn disagreement_spawns_retry() {
        let (mut db, wu) = setup();
        let rids = db.results_of(wu).to_vec();
        send_and_report(&mut db, rids[0], 0, 1);
        send_and_report(&mut db, rids[1], 1, 2); // byzantine disagreement
        match transition_wu(&mut db, wu, SimTime::from_secs(2)) {
            Transition::Retried { new_results } => {
                // {1, 2} in hand: largest agreeing group = 1, live = 0,
                // so one more replica is needed to possibly reach quorum.
                assert_eq!(new_results.len(), 1);
            }
            t => panic!("expected Retried, got {t:?}"),
        }
    }

    #[test]
    fn timeout_spawns_replacement() {
        let (mut db, wu) = setup();
        let rids = db.results_of(wu).to_vec();
        db.mark_sent(rids[0], ClientId(0), SimTime::ZERO, SimTime::from_secs(10));
        db.mark_timed_out(rids[0], SimTime::from_secs(10));
        match transition_wu(&mut db, wu, SimTime::from_secs(10)) {
            Transition::Retried { new_results } => assert_eq!(new_results.len(), 1),
            t => panic!("expected Retried, got {t:?}"),
        }
        assert_eq!(db.results_of(wu).len(), 3);
    }

    #[test]
    fn budget_exhaustion_fails_wu() {
        let mut db = Db::new();
        let mut spec = WorkUnitSpec::basic("w", "app", 1e9);
        spec.max_total_results = 2; // no retry budget at all
        let wu = db.insert_workunit(spec, SimTime::ZERO);
        let rids = db.results_of(wu).to_vec();
        for (i, rid) in rids.iter().enumerate() {
            db.mark_sent(
                *rid,
                ClientId(i as u32),
                SimTime::ZERO,
                SimTime::from_secs(10),
            );
            db.mark_timed_out(*rid, SimTime::from_secs(10));
        }
        assert_eq!(
            transition_wu(&mut db, wu, SimTime::from_secs(10)),
            Transition::Failed
        );
        assert_eq!(db.wu(wu).state, WuState::Failed);
    }

    #[test]
    fn validation_cancels_unsent_spares() {
        let mut db = Db::new();
        let mut spec = WorkUnitSpec::basic("w", "app", 1e9);
        spec.target_nresults = 3;
        spec.min_quorum = 2;
        let wu = db.insert_workunit(spec, SimTime::ZERO);
        let rids = db.results_of(wu).to_vec();
        send_and_report(&mut db, rids[0], 0, 9);
        send_and_report(&mut db, rids[1], 1, 9);
        // rids[2] never sent.
        match transition_wu(&mut db, wu, SimTime::from_secs(2)) {
            Transition::Validated { .. } => {}
            t => panic!("{t:?}"),
        }
        assert_eq!(
            db.result(rids[2]).outcome,
            Some(ResultOutcome::WuDone),
            "spare replica cancelled"
        );
        assert_eq!(db.n_unsent(), 0);
    }

    #[test]
    fn quorum_override_validates_from_a_single_result() {
        let (mut db, wu) = setup();
        db.set_quorum_override(wu, Some(1));
        let rids = db.results_of(wu).to_vec();
        db.cancel_unsent(rids[1]); // trust policy cancelled the spare
        send_and_report(&mut db, rids[0], 0, 42);
        match transition_wu(&mut db, wu, SimTime::from_secs(2)) {
            Transition::Validated {
                canonical,
                agreeing,
            } => {
                assert_eq!(canonical, OutputFingerprint(42));
                assert_eq!(agreeing.len(), 1);
            }
            t => panic!("expected Validated, got {t:?}"),
        }
    }

    #[test]
    fn cleared_override_restores_spec_quorum() {
        let (mut db, wu) = setup();
        db.set_quorum_override(wu, Some(1));
        db.set_quorum_override(wu, None);
        let rids = db.results_of(wu).to_vec();
        send_and_report(&mut db, rids[0], 0, 42);
        assert_eq!(
            transition_wu(&mut db, wu, SimTime::from_secs(1)),
            Transition::None,
            "one result must not validate once the override is cleared"
        );
    }

    #[test]
    fn in_progress_results_block_retry() {
        let (mut db, wu) = setup();
        let rids = db.results_of(wu).to_vec();
        db.mark_sent(
            rids[0],
            ClientId(0),
            SimTime::ZERO,
            SimTime::from_secs(1000),
        );
        // One in progress + one unsent = potential 2 >= quorum 2.
        assert_eq!(
            transition_wu(&mut db, wu, SimTime::from_secs(1)),
            Transition::None
        );
        assert_eq!(db.results_of(wu).len(), 2, "no spurious extra replicas");
    }
}
