//! Work units and results: the BOINC replication state machine.
//!
//! A *work unit* (WU) is the logical task; the server issues
//! `target_nresults` *results* (replica instances) of it to distinct
//! clients and declares the WU valid once `min_quorum` returned outputs
//! agree (§III.B: "each map work unit is sent to N different users …
//! there must be a quorum of identical outputs").

use crate::types::{ClientId, FileRef, OutputFingerprint, WuId};
use vmr_desim::{SimDuration, SimTime};
use vmr_durable::{Dec, Enc, WireError};

/// Immutable description of a work unit, as inserted by the project.
#[derive(Clone, Debug)]
pub struct WorkUnitSpec {
    /// Unique name, e.g. `mr0_map_3`.
    pub name: String,
    /// Application name; the scheduler can filter by it.
    pub app: String,
    /// Input files the client must download before executing.
    pub inputs: Vec<FileRef>,
    /// Computation size in FLOPs (scaled by host speed into seconds).
    pub flops: f64,
    /// Number of replica results to create (paper: 2).
    pub target_nresults: u32,
    /// Matching outputs required to validate (paper: 2 — "both results
    /// identical").
    pub min_quorum: u32,
    /// Hard ceiling on total results ever created for this WU before it
    /// is declared failed (BOINC's `max_total_results`).
    pub max_total_results: u32,
    /// Report deadline for each result (`delay_bound`).
    pub delay_bound: SimDuration,
    /// Size of the output file the task produces.
    pub output_bytes: u64,
    /// Whether output files are uploaded to the server (plain BOINC),
    /// or only their fingerprint is reported (BOINC-MR map outputs).
    pub upload_outputs: bool,
    /// Opaque project payload (vmr-core stores the MR task index here).
    pub payload: u64,
}

impl WorkUnitSpec {
    /// A minimal spec with the paper's replication parameters.
    pub fn basic(name: impl Into<String>, app: impl Into<String>, flops: f64) -> Self {
        WorkUnitSpec {
            name: name.into(),
            app: app.into(),
            inputs: Vec::new(),
            flops,
            target_nresults: 2,
            min_quorum: 2,
            max_total_results: 8,
            delay_bound: SimDuration::from_secs(6 * 3600),
            output_bytes: 0,
            upload_outputs: true,
            payload: 0,
        }
    }

    /// Append the WAL wire form to `e`.
    pub fn encode(&self, e: &mut Enc) {
        e.str(&self.name);
        e.str(&self.app);
        e.u32(self.inputs.len() as u32);
        for f in &self.inputs {
            f.encode(e);
        }
        e.f64(self.flops);
        e.u32(self.target_nresults);
        e.u32(self.min_quorum);
        e.u32(self.max_total_results);
        e.u64(self.delay_bound.as_micros());
        e.u64(self.output_bytes);
        e.bool(self.upload_outputs);
        e.u64(self.payload);
    }

    /// The WAL wire form as a standalone byte vector (the opaque blob
    /// stored in `StateChange::WuInserted`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new();
        self.encode(&mut e);
        e.into_vec()
    }

    /// Decode the WAL wire form.
    pub fn decode(d: &mut Dec<'_>) -> Result<Self, WireError> {
        let name = d.str()?;
        let app = d.str()?;
        let n = d.u32()? as usize;
        let mut inputs = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            inputs.push(FileRef::decode(d)?);
        }
        Ok(WorkUnitSpec {
            name,
            app,
            inputs,
            flops: d.f64()?,
            target_nresults: d.u32()?,
            min_quorum: d.u32()?,
            max_total_results: d.u32()?,
            delay_bound: SimDuration::from_micros(d.u64()?),
            output_bytes: d.u64()?,
            upload_outputs: d.bool()?,
            payload: d.u64()?,
        })
    }

    /// Decode a standalone [`WorkUnitSpec::to_bytes`] blob.
    pub fn from_bytes(b: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(b);
        let s = Self::decode(&mut d)?;
        d.finish()?;
        Ok(s)
    }
}

/// Lifecycle of a work unit on the server.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WuState {
    /// Results outstanding; no quorum yet.
    Active,
    /// A quorum of identical outputs was found.
    Validated,
    /// `max_total_results` exhausted without a quorum.
    Failed,
}

/// A work unit row in the project database.
#[derive(Clone, Debug)]
pub struct WorkUnit {
    /// Database id.
    pub id: WuId,
    /// Immutable spec.
    pub spec: WorkUnitSpec,
    /// Current lifecycle state.
    pub state: WuState,
    /// Fingerprint agreed on by the quorum, once validated.
    pub canonical: Option<OutputFingerprint>,
    /// Total results created so far (for `max_total_results`).
    pub results_created: u32,
    /// When the WU was inserted.
    pub created_at: SimTime,
    /// When the WU validated/failed.
    pub finished_at: Option<SimTime>,
    /// Adaptive-replication override of the spec's `min_quorum` (set by
    /// the trust policy when the WU rides on a single trusted host).
    pub quorum_override: Option<u32>,
}

impl WorkUnit {
    /// The quorum the transitioner enforces: the trust policy's
    /// override when present, the spec's `min_quorum` otherwise.
    pub fn effective_quorum(&self) -> u32 {
        self.quorum_override.unwrap_or(self.spec.min_quorum)
    }
}

/// Server-side state of one result (replica).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResultState {
    /// Waiting in the feeder/DB to be handed to a client.
    Unsent,
    /// Assigned to a client; the server awaits its report.
    InProgress,
    /// Reported (or timed out); see [`ResultOutcome`].
    Over,
}

/// Terminal outcome of a result.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResultOutcome {
    /// Output reported; fingerprint recorded.
    Success,
    /// Client error during download/execute/upload.
    Error,
    /// Report deadline passed with no reply.
    NoReply,
    /// Superseded: its WU validated without it (it may still report
    /// later; the report is accepted but changes nothing).
    WuDone,
}

impl WuState {
    /// Stable WAL wire tag.
    pub fn to_wire(self) -> u8 {
        match self {
            WuState::Active => 0,
            WuState::Validated => 1,
            WuState::Failed => 2,
        }
    }

    /// Decode a WAL wire tag.
    pub fn from_wire(t: u8) -> Result<Self, WireError> {
        match t {
            0 => Ok(WuState::Active),
            1 => Ok(WuState::Validated),
            2 => Ok(WuState::Failed),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl ResultState {
    /// Stable WAL wire tag.
    pub fn to_wire(self) -> u8 {
        match self {
            ResultState::Unsent => 0,
            ResultState::InProgress => 1,
            ResultState::Over => 2,
        }
    }

    /// Decode a WAL wire tag.
    pub fn from_wire(t: u8) -> Result<Self, WireError> {
        match t {
            0 => Ok(ResultState::Unsent),
            1 => Ok(ResultState::InProgress),
            2 => Ok(ResultState::Over),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl ResultOutcome {
    /// Stable WAL wire tag (also used inside `StateChange` records).
    pub fn to_wire(self) -> u8 {
        match self {
            ResultOutcome::Success => 0,
            ResultOutcome::Error => 1,
            ResultOutcome::NoReply => 2,
            ResultOutcome::WuDone => 3,
        }
    }

    /// Decode a WAL wire tag.
    pub fn from_wire(t: u8) -> Result<Self, WireError> {
        match t {
            0 => Ok(ResultOutcome::Success),
            1 => Ok(ResultOutcome::Error),
            2 => Ok(ResultOutcome::NoReply),
            3 => Ok(ResultOutcome::WuDone),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// A result row in the project database.
#[derive(Clone, Debug)]
pub struct ResultRec {
    /// Database id.
    pub id: crate::types::ResultId,
    /// Owning work unit.
    pub wu: WuId,
    /// Server-side state.
    pub state: ResultState,
    /// Assigned client, once sent.
    pub client: Option<ClientId>,
    /// When it was handed to the client.
    pub sent_at: Option<SimTime>,
    /// Deadline by which the client must report.
    pub report_deadline: Option<SimTime>,
    /// When the report arrived.
    pub reported_at: Option<SimTime>,
    /// Terminal outcome.
    pub outcome: Option<ResultOutcome>,
    /// Fingerprint the client reported.
    pub fingerprint: Option<OutputFingerprint>,
}

impl ResultRec {
    /// True if this result can still produce a report.
    pub fn is_live(&self) -> bool {
        matches!(self.state, ResultState::Unsent | ResultState::InProgress)
    }

    /// True if it reported successfully and awaits/underwent validation.
    pub fn is_success(&self) -> bool {
        self.outcome == Some(ResultOutcome::Success)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_spec_defaults_match_paper() {
        let s = WorkUnitSpec::basic("wu", "wc_map", 1e9);
        assert_eq!(s.target_nresults, 2);
        assert_eq!(s.min_quorum, 2);
        assert!(s.upload_outputs);
        assert!(s.max_total_results >= s.target_nresults);
    }

    #[test]
    fn result_liveness() {
        let r = ResultRec {
            id: crate::types::ResultId(0),
            wu: WuId(0),
            state: ResultState::Unsent,
            client: None,
            sent_at: None,
            report_deadline: None,
            reported_at: None,
            outcome: None,
            fingerprint: None,
        };
        assert!(r.is_live());
        assert!(!r.is_success());
        let done = ResultRec {
            state: ResultState::Over,
            outcome: Some(ResultOutcome::Success),
            fingerprint: Some(OutputFingerprint(1)),
            ..r
        };
        assert!(!done.is_live());
        assert!(done.is_success());
    }

    #[test]
    fn spec_wire_round_trip() {
        use crate::types::{FileRef, FileSource};
        let mut s = WorkUnitSpec::basic("mr0_map_3", "mr_map", 2.5e9);
        s.inputs = vec![
            FileRef::on_server("chunk_3", 1 << 20),
            FileRef {
                name: "inter_0_3".into(),
                bytes: 4096,
                source: FileSource::Peers(vec![ClientId(4), ClientId(9)]),
            },
        ];
        s.upload_outputs = false;
        s.payload = 0xDEAD_BEEF;
        let b = s.to_bytes();
        let back = WorkUnitSpec::from_bytes(&b).unwrap();
        assert_eq!(back.name, s.name);
        assert_eq!(back.inputs, s.inputs);
        assert_eq!(back.flops.to_bits(), s.flops.to_bits());
        assert_eq!(back.delay_bound, s.delay_bound);
        assert_eq!(back.payload, s.payload);
        assert!(!back.upload_outputs);
        // Canonical: equal specs encode identically.
        assert_eq!(back.to_bytes(), b);
    }

    #[test]
    fn enum_wire_tags_round_trip() {
        for s in [WuState::Active, WuState::Validated, WuState::Failed] {
            assert_eq!(WuState::from_wire(s.to_wire()).unwrap(), s);
        }
        for s in [
            ResultState::Unsent,
            ResultState::InProgress,
            ResultState::Over,
        ] {
            assert_eq!(ResultState::from_wire(s.to_wire()).unwrap(), s);
        }
        for o in [
            ResultOutcome::Success,
            ResultOutcome::Error,
            ResultOutcome::NoReply,
            ResultOutcome::WuDone,
        ] {
            assert_eq!(ResultOutcome::from_wire(o.to_wire()).unwrap(), o);
        }
        assert!(ResultOutcome::from_wire(9).is_err());
    }
}
