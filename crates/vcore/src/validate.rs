//! Quorum validation (§III.B).
//!
//! "Each map work unit is sent to N different users … and in order to be
//! validated there must be a quorum of identical outputs – 2 out of the
//! 3 users must return the same value, for example. This was also
//! applied to reduce work units."
//!
//! The validator groups successful results by output fingerprint and
//! declares the largest group canonical once it reaches `min_quorum`.

use crate::types::OutputFingerprint;

/// Verdict of one validation pass over a WU's reported results.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// A quorum of identical outputs exists.
    Valid {
        /// The agreed fingerprint.
        canonical: OutputFingerprint,
        /// Indexes (into the input slice) of the agreeing results.
        agreeing: Vec<usize>,
        /// Indexes of successful results that disagree (byzantine or
        /// faulty — they receive no credit and flag their hosts).
        dissenting: Vec<usize>,
    },
    /// Not enough agreement yet; more results are needed.
    Inconclusive,
}

/// Runs quorum validation over the fingerprints of the successful
/// results of one work unit.
///
/// Deterministic tie-break: among equal-sized groups reaching quorum the
/// smallest fingerprint wins (cannot happen with honest majorities, but
/// keeps the simulation reproducible under heavy fault injection).
pub fn check_quorum(fingerprints: &[OutputFingerprint], min_quorum: u32) -> Verdict {
    if min_quorum == 0 || (fingerprints.len() as u32) < min_quorum {
        return Verdict::Inconclusive;
    }
    // Group indexes by fingerprint.
    let mut groups: Vec<(OutputFingerprint, Vec<usize>)> = Vec::new();
    for (i, &fp) in fingerprints.iter().enumerate() {
        match groups.iter_mut().find(|(g, _)| *g == fp) {
            Some((_, v)) => v.push(i),
            None => groups.push((fp, vec![i])),
        }
    }
    groups.sort_by_key(|(fp, v)| (std::cmp::Reverse(v.len()), fp.0));
    let (canonical, agreeing) = groups[0].clone();
    if (agreeing.len() as u32) < min_quorum {
        return Verdict::Inconclusive;
    }
    let dissenting = (0..fingerprints.len())
        .filter(|i| !agreeing.contains(i))
        .collect();
    Verdict::Valid {
        canonical,
        agreeing,
        dissenting,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(x: u64) -> OutputFingerprint {
        OutputFingerprint(x)
    }

    #[test]
    fn two_of_two_agree() {
        let v = check_quorum(&[fp(5), fp(5)], 2);
        match v {
            Verdict::Valid {
                canonical,
                agreeing,
                dissenting,
            } => {
                assert_eq!(canonical, fp(5));
                assert_eq!(agreeing, vec![0, 1]);
                assert!(dissenting.is_empty());
            }
            _ => panic!("expected valid"),
        }
    }

    #[test]
    fn two_of_two_disagree() {
        assert_eq!(check_quorum(&[fp(1), fp(2)], 2), Verdict::Inconclusive);
    }

    #[test]
    fn two_of_three_with_byzantine_minority() {
        let v = check_quorum(&[fp(9), fp(1), fp(9)], 2);
        match v {
            Verdict::Valid {
                canonical,
                agreeing,
                dissenting,
            } => {
                assert_eq!(canonical, fp(9));
                assert_eq!(agreeing, vec![0, 2]);
                assert_eq!(dissenting, vec![1]);
            }
            _ => panic!("expected valid"),
        }
    }

    #[test]
    fn insufficient_results() {
        assert_eq!(check_quorum(&[fp(1)], 2), Verdict::Inconclusive);
        assert_eq!(check_quorum(&[], 1), Verdict::Inconclusive);
    }

    #[test]
    fn quorum_of_one_accepts_anything() {
        let v = check_quorum(&[fp(3)], 1);
        assert!(matches!(v, Verdict::Valid { canonical, .. } if canonical == fp(3)));
    }

    #[test]
    fn tie_breaks_deterministically() {
        // Two groups of size 2 with quorum 2: smaller fingerprint wins.
        let v = check_quorum(&[fp(8), fp(3), fp(8), fp(3)], 2);
        match v {
            Verdict::Valid { canonical, .. } => assert_eq!(canonical, fp(3)),
            _ => panic!("expected valid"),
        }
    }

    #[test]
    fn zero_quorum_is_inconclusive() {
        assert_eq!(check_quorum(&[fp(1)], 0), Verdict::Inconclusive);
    }
}
