//! Project/client configuration knobs.
//!
//! The config is grouped into nested sub-structs per subsystem
//! ([`NetConfig`], [`ShardConfig`], [`vmr_trust::TrustConfig`]) so new
//! subsystems stop flat-growing the top level. Serialization stays
//! backward-compatible: the sub-structs are `#[serde(flatten)]`ed and
//! their fields keep the historical flat names (`net_coalesce_threshold`
//! etc.), and every new group carries `#[serde(default)]`.

use serde::{Deserialize, Serialize};
use vmr_desim::SimDuration;

/// Network-engine knobs (see `vmr_netsim::ScalePolicy`).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct NetConfig {
    /// In-flight flow count beyond which the network engine leaves its
    /// exact regime and coalesces flow classes. The default
    /// (`usize::MAX`) never coalesces, keeping testbed-scale runs
    /// bit-identical to the exact engine; internet-scale populations
    /// set a few hundred.
    #[serde(rename = "net_coalesce_threshold")]
    pub coalesce_threshold: usize,
    /// Mantissa bits kept by the scale regime's published link shares
    /// (52 = exact, 6 ≈ 1.5 % buckets).
    #[serde(rename = "net_quantum_bits")]
    pub quantum_bits: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            coalesce_threshold: usize::MAX,
            quantum_bits: 52,
        }
    }
}

/// Server-core sharding knobs.
///
/// The engine partitions its hot state (workunit/result tables, feeder
/// cache, credit/trust ledgers) into `n` shards keyed by
/// `wu_id % n` / `host_id % n`. Shard merges are deterministic (global
/// id order), so any shard count produces bit-identical runs; `n = 1`
/// is exactly the historical single-shard engine.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct ShardConfig {
    /// Number of server-state shards (≥ 1).
    #[serde(rename = "shard_n")]
    pub n: usize,
    /// Run daemon passes (transitioner planning, feeder refill) on a
    /// worker pool fanned out over shards. Plans are applied in global
    /// id order, so this does not affect results — only wall-clock.
    #[serde(rename = "shard_parallel_daemons")]
    pub parallel_daemons: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            n: 1,
            parallel_daemons: false,
        }
    }
}

/// Built-in configuration presets (see [`ProjectConfig::preset`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preset {
    /// The paper's §IV.A Emulab testbed: exact network regime,
    /// replication 2 / quorum 2, 600 s backoff cap. Identical to
    /// `ProjectConfig::default()`.
    Testbed,
    /// Internet-scale volunteer populations: the network engine
    /// coalesces flow classes past a few hundred in-flight flows
    /// (matching `vmr_netsim::ScalePolicy::internet()`).
    Internet,
}

/// Server- and client-side tunables of the middleware model.
///
/// Defaults follow the paper's setup (§IV.A): replication 2, quorum 2,
/// backoff capped at 600 s, scheduler reachable over LAN latencies.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProjectConfig {
    /// Scheduler RPC round-trip overhead (request parsing, DB queries),
    /// seconds. Applied between a client's request and its grant.
    pub rpc_overhead_s: f64,
    /// First backoff delay after an empty reply, seconds.
    pub backoff_min_s: u64,
    /// Backoff cap, seconds (the paper's 600 s).
    pub backoff_max_s: u64,
    /// Maximum results handed out per work request.
    pub max_results_per_rpc: u32,
    /// How many tasks a client wants buffered (in BOINC terms, the work
    /// buffer expressed in task slots). The client requests work when it
    /// holds fewer live tasks than this.
    pub client_buffer_slots: u32,
    /// §IV.C mitigation: report completed results immediately (extra RPC
    /// right after upload) instead of waiting for the next work-fetch
    /// RPC. Off by default — the paper's observed behaviour.
    pub report_results_immediately: bool,
    /// Feeder shared-memory cache capacity (ready-to-send results).
    pub feeder_slots: usize,
    /// Transitioner/feeder pass period, seconds. Reduce WUs created by a
    /// policy become visible to the scheduler only after such a pass —
    /// part of the phase-transition gap the paper describes.
    pub server_daemon_period_s: f64,
    /// Relative compute-time jitter: a task's execution time is scaled
    /// by `uniform[1-jitter, 1+jitter]` per (client, task).
    pub compute_jitter: f64,
    /// Inter-client transfers: attempts per peer before falling back to
    /// the data server ("after n failed attempts, the user resorts to
    /// downloading the file from the server").
    pub peer_retry_limit: u32,
    /// Delay between peer retry attempts, seconds.
    pub peer_retry_delay_s: f64,
    /// Maximum concurrent uploads a serving client accepts ("threshold
    /// for a maximum number of inter-client connections").
    pub max_serving_connections: u32,
    /// When a serving slot is busy, the fetcher retries after this many
    /// seconds.
    pub serving_busy_retry_s: f64,
    /// Map-output serving window: files stop being served this long
    /// after they were produced, unless the server resets the timeout
    /// ("if the files have been served for too long").
    pub serving_timeout_s: f64,
    /// Locality-aware matchmaking: prefer granting a result to a client
    /// that already *serves* some of its input files (a reducer that
    /// mapped part of the data downloads that part from itself).
    pub locality_scheduling: bool,
    /// Quarantine: stop granting work to hosts whose error rate (from
    /// the credit ledger) exceeds this; `None` disables.
    pub max_host_error_rate: Option<f64>,
    /// Network-engine scale knobs.
    #[serde(flatten)]
    pub net: NetConfig,
    /// Server-core sharding knobs.
    #[serde(flatten)]
    pub shard: ShardConfig,
    /// Host reputation / adaptive replication knobs (`vmr-trust`).
    /// Disabled by default — the engine is then bit-identical to the
    /// fixed-quorum baseline.
    #[serde(default)]
    pub trust: vmr_trust::TrustConfig,
    /// Map-output distribution strategy (`vmr-shuffle`). The default
    /// `Baseline` strategy is bit-identical to the pre-strategy
    /// transfer path (enforced by differential proptest).
    #[serde(default)]
    pub shuffle: vmr_shuffle::ShuffleConfig,
}

impl Default for ProjectConfig {
    fn default() -> Self {
        ProjectConfig {
            rpc_overhead_s: 0.5,
            backoff_min_s: 60,
            backoff_max_s: 600,
            max_results_per_rpc: 4,
            client_buffer_slots: 2,
            report_results_immediately: false,
            feeder_slots: 100,
            server_daemon_period_s: 5.0,
            compute_jitter: 0.05,
            peer_retry_limit: 3,
            peer_retry_delay_s: 2.0,
            max_serving_connections: 6,
            serving_busy_retry_s: 1.0,
            serving_timeout_s: 3600.0,
            locality_scheduling: false,
            max_host_error_rate: None,
            net: NetConfig::default(),
            shard: ShardConfig::default(),
            trust: vmr_trust::TrustConfig::default(),
            shuffle: vmr_shuffle::ShuffleConfig::default(),
        }
    }
}

impl ProjectConfig {
    /// A named preset: the general form of the old ad-hoc
    /// `with_internet_net()` tuning constructor.
    pub fn preset(p: Preset) -> Self {
        let mut cfg = ProjectConfig::default();
        match p {
            Preset::Testbed => {}
            Preset::Internet => {
                let sp = vmr_netsim::ScalePolicy::internet();
                cfg.net.coalesce_threshold = sp.coalesce_threshold;
                cfg.net.quantum_bits = sp.quantum_mantissa_bits;
            }
        }
        cfg
    }

    /// Backoff bounds as durations.
    pub fn backoff_bounds(&self) -> (SimDuration, SimDuration) {
        (
            SimDuration::from_secs(self.backoff_min_s),
            SimDuration::from_secs(self.backoff_max_s),
        )
    }

    /// The network engine's scale policy built from the plain-number
    /// knobs.
    pub fn scale_policy(&self) -> vmr_netsim::ScalePolicy {
        vmr_netsim::ScalePolicy {
            coalesce_threshold: self.net.coalesce_threshold,
            quantum_mantissa_bits: self.net.quantum_bits,
        }
    }

    /// Returns a copy tuned for internet-scale host populations.
    #[deprecated(note = "use ProjectConfig::preset(Preset::Internet) or set cfg.net directly")]
    pub fn with_internet_net(mut self) -> Self {
        let p = vmr_netsim::ScalePolicy::internet();
        self.net.coalesce_threshold = p.coalesce_threshold;
        self.net.quantum_bits = p.quantum_mantissa_bits;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ProjectConfig::default();
        assert_eq!(c.backoff_max_s, 600);
        assert!(!c.report_results_immediately);
        assert_eq!(c.peer_retry_limit, 3);
        assert!(!c.trust.enabled, "trust is opt-in");
        assert_eq!(c.shard.n, 1, "single shard is the baseline");
    }

    #[test]
    fn backoff_bounds_roundtrip() {
        let c = ProjectConfig::default();
        let (lo, hi) = c.backoff_bounds();
        assert_eq!(lo, SimDuration::from_secs(60));
        assert_eq!(hi, SimDuration::from_secs(600));
    }

    #[test]
    fn presets() {
        let t = ProjectConfig::preset(Preset::Testbed);
        assert_eq!(t.net.coalesce_threshold, usize::MAX);
        let i = ProjectConfig::preset(Preset::Internet);
        let sp = vmr_netsim::ScalePolicy::internet();
        assert_eq!(i.net.coalesce_threshold, sp.coalesce_threshold);
        assert_eq!(i.net.quantum_bits, sp.quantum_mantissa_bits);
        #[allow(deprecated)]
        let legacy = ProjectConfig::default().with_internet_net();
        assert_eq!(legacy.net.coalesce_threshold, i.net.coalesce_threshold);
        assert_eq!(legacy.net.quantum_bits, i.net.quantum_bits);
    }

    /// Serde support is attribute-level with the vendored stub (no
    /// runtime format crate exists offline): the sub-structs keep the
    /// historical flat wire names via `#[serde(flatten)]` + `rename`,
    /// and carry `#[serde(default)]` so pre-shard configs deserialize
    /// under real serde. Here we verify the derives compile and the
    /// nested groups are value-preserved through a clone.
    #[test]
    fn serde_derives_and_nested_groups() {
        fn serializable<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        serializable::<ProjectConfig>();
        serializable::<NetConfig>();
        serializable::<ShardConfig>();
        let mut c = ProjectConfig::default();
        c.net.quantum_bits = 6;
        c.shard.n = 4;
        let d = c.clone();
        assert_eq!(format!("{c:?}"), format!("{d:?}"));
        assert_eq!(d.shard.n, 4);
    }
}
