//! Shared identifiers and small enums for the middleware model.

use std::fmt;

/// A work unit (the unit of replication) in the project database.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WuId(pub u32);

/// One replica instance of a work unit, sent to a single client.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResultId(pub u32);

/// A volunteer client (one per simulated machine).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u32);

impl fmt::Debug for WuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wu{}", self.0)
    }
}
impl fmt::Display for WuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wu{}", self.0)
    }
}
impl fmt::Debug for ResultId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}
impl fmt::Display for ResultId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}
impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}
impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A fingerprint of an output file set — what validators compare.
///
/// In the real system this is a cryptographic hash of the output files
/// (the paper proposes reporting hashes instead of whole files); in the
/// timing model it is a deterministic function of the work unit plus any
/// byzantine corruption.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OutputFingerprint(pub u64);

/// Where an input file can be fetched from.
#[derive(Clone, Debug, PartialEq)]
pub enum FileSource {
    /// The project's data server (plain BOINC path).
    DataServer,
    /// Peer volunteers holding the file (BOINC-MR inter-client path).
    /// Ordered preference list; the client walks it with retries and
    /// falls back to the data server after `peer_retry_limit` failures.
    Peers(Vec<ClientId>),
}

/// An input or output file attached to a work unit.
#[derive(Clone, Debug, PartialEq)]
pub struct FileRef {
    /// Logical file name (unique within the project).
    pub name: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Where to fetch it from (inputs only; outputs go to the server).
    pub source: FileSource,
}

impl FileRef {
    /// Convenience constructor for a server-hosted file.
    pub fn on_server(name: impl Into<String>, bytes: u64) -> Self {
        FileRef {
            name: name.into(),
            bytes,
            source: FileSource::DataServer,
        }
    }

    /// Append the WAL wire form to `e`.
    pub fn encode(&self, e: &mut vmr_durable::Enc) {
        e.str(&self.name);
        e.u64(self.bytes);
        match &self.source {
            FileSource::DataServer => e.u8(0),
            FileSource::Peers(peers) => {
                e.u8(1);
                e.u32(peers.len() as u32);
                for p in peers {
                    e.u32(p.0);
                }
            }
        }
    }

    /// Decode the WAL wire form.
    pub fn decode(d: &mut vmr_durable::Dec<'_>) -> Result<Self, vmr_durable::WireError> {
        let name = d.str()?;
        let bytes = d.u64()?;
        let source = match d.u8()? {
            0 => FileSource::DataServer,
            1 => {
                let n = d.u32()? as usize;
                let mut peers = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    peers.push(ClientId(d.u32()?));
                }
                FileSource::Peers(peers)
            }
            t => return Err(vmr_durable::WireError::BadTag(t)),
        };
        Ok(FileRef {
            name,
            bytes,
            source,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(WuId(3).to_string(), "wu3");
        assert_eq!(ResultId(4).to_string(), "r4");
        assert_eq!(ClientId(5).to_string(), "c5");
    }

    #[test]
    fn server_file_helper() {
        let f = FileRef::on_server("in_0", 123);
        assert_eq!(f.source, FileSource::DataServer);
        assert_eq!(f.bytes, 123);
    }
}
