//! The assimilator: hands validated canonical results to the project.
//!
//! In BOINC, the assimilator daemon is the project-defined sink that
//! consumes each work unit's canonical result (writes it to the science
//! database, archives files…). Here it is an ordered registry of
//! canonical outputs per application, which BOINC-MR's merge step reads
//! ("The final output from each reducer is uploaded back to the server,
//! and can be merged into a single file, if necessary").

use crate::types::{ClientId, OutputFingerprint, WuId};
use std::collections::HashMap;
use vmr_desim::SimTime;

/// One assimilated (validated, canonical) work-unit outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct Assimilated {
    /// The work unit.
    pub wu: WuId,
    /// Work unit name (e.g. `mr0_red_2`).
    pub wu_name: String,
    /// Application name (e.g. `mr0_red`).
    pub app: String,
    /// Canonical output fingerprint.
    pub canonical: OutputFingerprint,
    /// Clients holding the canonical output.
    pub holders: Vec<ClientId>,
    /// When it validated.
    pub at: SimTime,
}

/// Ordered sink of canonical results.
#[derive(Debug, Default)]
pub struct Assimilator {
    records: Vec<Assimilated>,
    by_app: HashMap<String, Vec<usize>>,
}

impl Assimilator {
    /// An empty assimilator.
    pub fn new() -> Self {
        Assimilator::default()
    }

    /// Consumes one validated work unit.
    pub fn assimilate(&mut self, rec: Assimilated) {
        self.by_app
            .entry(rec.app.clone())
            .or_default()
            .push(self.records.len());
        self.records.push(rec);
    }

    /// All assimilated records, in validation order.
    pub fn all(&self) -> &[Assimilated] {
        &self.records
    }

    /// Records of one application, in validation order (the per-job
    /// merge input).
    pub fn of_app(&self, app: &str) -> Vec<&Assimilated> {
        self.by_app
            .get(app)
            .map(|idxs| idxs.iter().map(|&i| &self.records[i]).collect())
            .unwrap_or_default()
    }

    /// Number of assimilated work units.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was assimilated yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(wu: u32, app: &str, t: u64) -> Assimilated {
        Assimilated {
            wu: WuId(wu),
            wu_name: format!("{app}_{wu}"),
            app: app.to_string(),
            canonical: OutputFingerprint(wu as u64 * 7),
            holders: vec![ClientId(0), ClientId(1)],
            at: SimTime::from_secs(t),
        }
    }

    #[test]
    fn preserves_validation_order() {
        let mut a = Assimilator::new();
        a.assimilate(rec(2, "map", 5));
        a.assimilate(rec(0, "map", 7));
        a.assimilate(rec(1, "red", 9));
        assert_eq!(a.len(), 3);
        let maps = a.of_app("map");
        assert_eq!(maps.len(), 2);
        assert_eq!(maps[0].wu, WuId(2));
        assert_eq!(maps[1].wu, WuId(0));
        assert_eq!(a.of_app("red").len(), 1);
        assert!(a.of_app("ghost").is_empty());
    }

    #[test]
    fn empty_state() {
        let a = Assimilator::new();
        assert!(a.is_empty());
        assert!(a.all().is_empty());
    }
}
