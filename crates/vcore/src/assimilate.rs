//! The assimilator: hands validated canonical results to the project.
//!
//! In BOINC, the assimilator daemon is the project-defined sink that
//! consumes each work unit's canonical result (writes it to the science
//! database, archives files…). Here it is an ordered registry of
//! canonical outputs per application, which BOINC-MR's merge step reads
//! ("The final output from each reducer is uploaded back to the server,
//! and can be merged into a single file, if necessary").

use crate::db::Db;
use crate::types::{ClientId, OutputFingerprint, WuId};
use std::collections::HashMap;
use vmr_desim::SimTime;
use vmr_durable::{Dec, Enc, Journal, StateChange, WireError};

/// One assimilated (validated, canonical) work-unit outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct Assimilated {
    /// The work unit.
    pub wu: WuId,
    /// Work unit name (e.g. `mr0_red_2`).
    pub wu_name: String,
    /// Application name (e.g. `mr0_red`).
    pub app: String,
    /// Canonical output fingerprint.
    pub canonical: OutputFingerprint,
    /// Clients holding the canonical output.
    pub holders: Vec<ClientId>,
    /// When it validated.
    pub at: SimTime,
}

/// Ordered sink of canonical results.
#[derive(Debug, Default)]
pub struct Assimilator {
    records: Vec<Assimilated>,
    by_app: HashMap<String, Vec<usize>>,
    /// WAL handle (disabled by default).
    journal: Journal,
}

impl Assimilator {
    /// An empty assimilator.
    pub fn new() -> Self {
        Assimilator::default()
    }

    /// Attaches the engine's WAL handle.
    pub fn set_journal(&mut self, journal: Journal) {
        self.journal = journal;
    }

    /// Consumes one validated work unit.
    ///
    /// The WAL record stores only `{wu, holders, at}`; the name, app
    /// and canonical fingerprint are functions of the WU row, which the
    /// replayed database already holds by the time this record is
    /// applied (the `WuValidated` record precedes it in the same
    /// committed event).
    pub fn assimilate(&mut self, rec: Assimilated) {
        self.journal.append(&StateChange::Assimilated {
            wu: rec.wu.0,
            holders: rec.holders.iter().map(|c| c.0).collect(),
            at_us: rec.at.as_micros(),
        });
        self.raw_assimilate(rec);
    }

    fn raw_assimilate(&mut self, rec: Assimilated) {
        self.by_app
            .entry(rec.app.clone())
            .or_default()
            .push(self.records.len());
        self.records.push(rec);
    }

    /// Applies one replayed change record, re-deriving the denormalized
    /// fields from `db`; `Ok(false)` when the record belongs to another
    /// subsystem.
    pub fn apply_change(&mut self, c: &StateChange, db: &Db) -> Result<bool, WireError> {
        match c {
            StateChange::Assimilated { wu, holders, at_us } => {
                let w = db.wu(WuId(*wu));
                let rec = Assimilated {
                    wu: WuId(*wu),
                    wu_name: w.spec.name.clone(),
                    app: w.spec.app.clone(),
                    canonical: w.canonical.unwrap_or(OutputFingerprint(0)),
                    holders: holders.iter().copied().map(ClientId).collect(),
                    at: SimTime::from_micros(*at_us),
                };
                self.raw_assimilate(rec);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Canonical snapshot of the record list (the `by_app` index is
    /// derived and rebuilt on decode).
    pub fn encode_state(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(16 + self.records.len() * 48);
        e.u32(self.records.len() as u32);
        for r in &self.records {
            e.u32(r.wu.0);
            e.str(&r.wu_name);
            e.str(&r.app);
            e.u64(r.canonical.0);
            e.u32(r.holders.len() as u32);
            for h in &r.holders {
                e.u32(h.0);
            }
            e.u64(r.at.as_micros());
        }
        e.into_vec()
    }

    /// Rebuilds an assimilator from an [`Assimilator::encode_state`]
    /// snapshot section. The journal handle starts disabled.
    pub fn decode_state(b: &[u8]) -> Result<Assimilator, WireError> {
        let mut d = Dec::new(b);
        let n = d.u32()? as usize;
        let mut a = Assimilator::new();
        for _ in 0..n {
            let wu = WuId(d.u32()?);
            let wu_name = d.str()?;
            let app = d.str()?;
            let canonical = OutputFingerprint(d.u64()?);
            let nh = d.u32()? as usize;
            let mut holders = Vec::with_capacity(nh.min(1024));
            for _ in 0..nh {
                holders.push(ClientId(d.u32()?));
            }
            let at = SimTime::from_micros(d.u64()?);
            a.raw_assimilate(Assimilated {
                wu,
                wu_name,
                app,
                canonical,
                holders,
                at,
            });
        }
        d.finish()?;
        Ok(a)
    }

    /// All assimilated records, in validation order.
    pub fn all(&self) -> &[Assimilated] {
        &self.records
    }

    /// Records of one application, in validation order (the per-job
    /// merge input).
    pub fn of_app(&self, app: &str) -> Vec<&Assimilated> {
        self.by_app
            .get(app)
            .map(|idxs| idxs.iter().map(|&i| &self.records[i]).collect())
            .unwrap_or_default()
    }

    /// Number of assimilated work units.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was assimilated yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(wu: u32, app: &str, t: u64) -> Assimilated {
        Assimilated {
            wu: WuId(wu),
            wu_name: format!("{app}_{wu}"),
            app: app.to_string(),
            canonical: OutputFingerprint(wu as u64 * 7),
            holders: vec![ClientId(0), ClientId(1)],
            at: SimTime::from_secs(t),
        }
    }

    #[test]
    fn preserves_validation_order() {
        let mut a = Assimilator::new();
        a.assimilate(rec(2, "map", 5));
        a.assimilate(rec(0, "map", 7));
        a.assimilate(rec(1, "red", 9));
        assert_eq!(a.len(), 3);
        let maps = a.of_app("map");
        assert_eq!(maps.len(), 2);
        assert_eq!(maps[0].wu, WuId(2));
        assert_eq!(maps[1].wu, WuId(0));
        assert_eq!(a.of_app("red").len(), 1);
        assert!(a.of_app("ghost").is_empty());
    }

    #[test]
    fn empty_state() {
        let a = Assimilator::new();
        assert!(a.is_empty());
        assert!(a.all().is_empty());
    }

    #[test]
    fn snapshot_round_trip_is_canonical() {
        let mut a = Assimilator::new();
        a.assimilate(rec(2, "map", 5));
        a.assimilate(rec(0, "map", 7));
        a.assimilate(rec(1, "red", 9));
        let enc = a.encode_state();
        let back = Assimilator::decode_state(&enc).unwrap();
        assert_eq!(back.encode_state(), enc);
        assert_eq!(back.all(), a.all());
        assert_eq!(back.of_app("map").len(), 2);
    }

    #[test]
    fn wal_replay_rederives_from_db() {
        use crate::workunit::{ResultOutcome, WorkUnitSpec};
        use vmr_durable::{recover, DurabilityPlan};
        let j = Journal::new(&DurabilityPlan::new(0.0)).unwrap();
        // A journaled db + assimilator validating one WU end to end.
        let mut db = Db::new();
        db.set_journal(j.clone());
        let mut live = Assimilator::new();
        live.set_journal(j.clone());
        let wu = db.insert_workunit(
            WorkUnitSpec::basic("mr0_map_0", "mr0_map", 1e9),
            SimTime::ZERO,
        );
        let rids = db.results_of(wu).to_vec();
        for (i, &rid) in rids.iter().enumerate() {
            db.mark_sent(
                rid,
                ClientId(i as u32),
                SimTime::ZERO,
                SimTime::from_secs(100),
            );
            db.mark_reported(
                rid,
                ResultOutcome::Success,
                Some(OutputFingerprint(42)),
                SimTime::from_secs(9),
            );
        }
        db.mark_wu_validated(wu, OutputFingerprint(42), SimTime::from_secs(9));
        live.assimilate(Assimilated {
            wu,
            wu_name: "mr0_map_0".into(),
            app: "mr0_map".into(),
            canonical: OutputFingerprint(42),
            holders: vec![ClientId(0), ClientId(1)],
            at: SimTime::from_secs(9),
        });
        j.commit();
        let r = recover(&j.log_bytes()).unwrap();
        let mut rdb = Db::new();
        let mut ra = Assimilator::new();
        for c in &r.tail {
            if !rdb.apply_change(c).unwrap() {
                assert!(ra.apply_change(c, &rdb).unwrap(), "unhandled {c:?}");
            }
        }
        assert_eq!(ra.encode_state(), live.encode_state());
        assert_eq!(ra.all(), live.all());
    }
}
