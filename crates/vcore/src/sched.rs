//! Scheduler matchmaking: which results does a work request get?
//!
//! BOINC's scheduler picks from the feeder's cache, honouring:
//! * one result per work unit per host (replicas must land on distinct
//!   machines or quorum validation would be meaningless);
//! * the client's requested amount (here: task slots);
//! * a per-RPC grant ceiling.
//!
//! The decision function is pure so it can be unit-tested exhaustively;
//! the engine applies its choices to the database.

use crate::db::Db;
use crate::shard::WorkerPool;
use crate::types::{ClientId, ResultId};

/// A client's work request, as seen by the scheduler.
#[derive(Clone, Copy, Debug)]
pub struct WorkRequest {
    /// Requesting client.
    pub client: ClientId,
    /// Task slots the client wants filled.
    pub slots_wanted: u32,
}

/// Chooses up to `min(slots_wanted, max_per_rpc)` results for `req`
/// from the feeder's candidate stream, skipping work units the client
/// already holds a replica of. Candidates are consumed in order
/// (feeder order == creation order, BOINC's FIFO default) and lazily —
/// the stream is abandoned once the grant fills, so a merged per-shard
/// feeder never materializes candidates it won't inspect.
pub fn pick_results(
    db: &Db,
    candidates: impl IntoIterator<Item = ResultId>,
    req: WorkRequest,
    max_per_rpc: u32,
) -> Vec<ResultId> {
    let want = req.slots_wanted.min(max_per_rpc) as usize;
    let mut picked: Vec<ResultId> = Vec::with_capacity(want);
    for rid in candidates {
        if picked.len() >= want {
            break;
        }
        // The feeder cache can lag the database: a candidate may have
        // been cancelled (trust policy dropping spare replicas) or
        // granted since it was cached. Only unsent results are eligible.
        if db.result(rid).state != crate::workunit::ResultState::Unsent {
            continue;
        }
        let wu = db.result(rid).wu;
        if db.client_has_wu(req.client, wu) {
            continue;
        }
        // Also skip if we already picked another result of the same WU
        // in this very grant.
        if picked.iter().any(|&p| db.result(p).wu == wu) {
            continue;
        }
        picked.push(rid);
    }
    picked
}

/// The feeder's shared-memory cache of ready-to-send results, sharded
/// by `rid % n` to match the database partitioning.
///
/// Each shard's segment is kept in ascending rid order (refills insert
/// in id order; removals preserve order), so the merged candidate
/// stream ([`Feeder::candidates`]) reproduces the single-shard feeder's
/// FIFO order exactly — sharding never changes which results a grant
/// picks. What it changes is cost: evicting a granted result touches
/// only its own segment (O(capacity / n) instead of O(capacity)), the
/// per-grant hot path this partitioning exists for.
#[derive(Debug)]
pub struct Feeder {
    segments: Vec<Vec<ResultId>>,
}

impl Feeder {
    /// An empty feeder partitioned into `n` shards (`n ≥ 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "feeder shard count must be at least 1");
        Feeder {
            segments: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of feeder shards.
    pub fn n_shards(&self) -> usize {
        self.segments.len()
    }

    /// Cached results across all segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(Vec::len).sum()
    }

    /// True when no results are cached.
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(Vec::is_empty)
    }

    /// Drops everything from the cache.
    pub fn clear(&mut self) {
        for seg in &mut self.segments {
            seg.clear();
        }
    }

    /// One feeder pass: replaces the cache with the first `slots`
    /// unsent results in global id order. With a worker pool, each
    /// shard's candidate prefix is scanned concurrently and the global
    /// cutoff is found by an id-order merge — bit-identical to the
    /// sequential scan at any shard count.
    pub fn refill(&mut self, db: &Db, slots: usize, pool: &WorkerPool) {
        let n = self.segments.len();
        if n == 1 {
            let seg = &mut self.segments[0];
            seg.clear();
            seg.extend(db.unsent_results().take(slots));
            return;
        }
        debug_assert_eq!(n, db.n_shards(), "feeder/db shard counts must match");
        // Per-shard candidate prefixes: the global first-`slots` cut
        // cannot take more than `slots` from any one shard.
        let prefixes: Vec<Vec<ResultId>> =
            pool.map(n, |s| db.shard_unsent(s).take(slots).collect());
        // Merge in id order to find how many of each prefix make the
        // global cut; each shard's share is a prefix of its candidates.
        let mut take = vec![0usize; n];
        let mut heads = vec![0usize; n];
        for _ in 0..slots {
            let mut best: Option<(usize, ResultId)> = None;
            for s in 0..n {
                if let Some(&rid) = prefixes[s].get(heads[s]) {
                    if best.map(|(_, b)| rid < b).unwrap_or(true) {
                        best = Some((s, rid));
                    }
                }
            }
            match best {
                Some((s, _)) => {
                    heads[s] += 1;
                    take[s] += 1;
                }
                None => break,
            }
        }
        for (s, mut prefix) in prefixes.into_iter().enumerate() {
            prefix.truncate(take[s]);
            self.segments[s] = prefix;
        }
    }

    /// Evicts `rid` from the cache (granted or cancelled). Touches only
    /// the result's own segment: O(len / n_shards).
    pub fn remove(&mut self, rid: ResultId) {
        let s = rid.0 as usize % self.segments.len();
        self.segments[s].retain(|&r| r != rid);
    }

    /// The cached results in global id order — an id-order merge of the
    /// per-shard segments, lazily evaluated.
    pub fn candidates(&self) -> impl Iterator<Item = ResultId> + '_ {
        MergeSegments {
            heads: self
                .segments
                .iter()
                .map(|seg| seg.iter().copied().peekable())
                .collect(),
        }
    }
}

/// K-way id-order merge over the per-shard segments (shard counts are
/// small, so a linear head scan beats a heap).
struct MergeSegments<I: Iterator<Item = ResultId>> {
    heads: Vec<std::iter::Peekable<I>>,
}

impl<I: Iterator<Item = ResultId>> Iterator for MergeSegments<I> {
    type Item = ResultId;
    fn next(&mut self) -> Option<ResultId> {
        if self.heads.len() == 1 {
            return self.heads[0].next();
        }
        let mut best: Option<(usize, ResultId)> = None;
        for (i, it) in self.heads.iter_mut().enumerate() {
            if let Some(&id) = it.peek() {
                if best.map(|(_, b)| id < b).unwrap_or(true) {
                    best = Some((i, id));
                }
            }
        }
        let (i, _) = best?;
        self.heads[i].next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workunit::WorkUnitSpec;
    use vmr_desim::SimTime;

    fn db_with(n_wus: usize) -> Db {
        let mut db = Db::new();
        for i in 0..n_wus {
            db.insert_workunit(
                WorkUnitSpec::basic(format!("wu{i}"), "app", 1e9),
                SimTime::ZERO,
            );
        }
        db
    }

    fn unsent(db: &Db) -> Vec<ResultId> {
        db.unsent_results().collect()
    }

    #[test]
    fn grants_up_to_slots_wanted() {
        let db = db_with(5);
        let picked = pick_results(
            &db,
            unsent(&db),
            WorkRequest {
                client: ClientId(0),
                slots_wanted: 3,
            },
            10,
        );
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn grant_capped_by_max_per_rpc() {
        let db = db_with(5);
        let picked = pick_results(
            &db,
            unsent(&db),
            WorkRequest {
                client: ClientId(0),
                slots_wanted: 10,
            },
            2,
        );
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn never_two_replicas_of_same_wu_in_one_grant() {
        let db = db_with(1); // one WU, two replicas unsent
        let picked = pick_results(
            &db,
            unsent(&db),
            WorkRequest {
                client: ClientId(0),
                slots_wanted: 5,
            },
            10,
        );
        assert_eq!(picked.len(), 1, "must not hand both replicas to one host");
    }

    #[test]
    fn skips_wus_already_held() {
        let mut db = db_with(2);
        // Client 0 already holds a replica of wu0.
        let wu0_results = db.results_of(crate::types::WuId(0)).to_vec();
        db.mark_sent(
            wu0_results[0],
            ClientId(0),
            SimTime::ZERO,
            SimTime::from_secs(1000),
        );
        let picked = pick_results(
            &db,
            unsent(&db),
            WorkRequest {
                client: ClientId(0),
                slots_wanted: 5,
            },
            10,
        );
        // Only wu1's replica is eligible.
        assert_eq!(picked.len(), 1);
        assert_eq!(db.result(picked[0]).wu, crate::types::WuId(1));
    }

    #[test]
    fn other_client_still_gets_the_wu() {
        let mut db = db_with(1);
        let rids = db.results_of(crate::types::WuId(0)).to_vec();
        db.mark_sent(
            rids[0],
            ClientId(0),
            SimTime::ZERO,
            SimTime::from_secs(1000),
        );
        let picked = pick_results(
            &db,
            unsent(&db),
            WorkRequest {
                client: ClientId(1),
                slots_wanted: 1,
            },
            10,
        );
        assert_eq!(picked.len(), 1);
    }

    #[test]
    fn stale_cancelled_candidates_are_skipped() {
        let mut db = db_with(1);
        let stale = unsent(&db); // cached before the cancellation
        let rids = db.results_of(crate::types::WuId(0)).to_vec();
        db.cancel_unsent(rids[0]);
        let picked = pick_results(
            &db,
            stale,
            WorkRequest {
                client: ClientId(0),
                slots_wanted: 5,
            },
            10,
        );
        assert_eq!(
            picked,
            vec![rids[1]],
            "cancelled result must not be granted"
        );
    }

    #[test]
    fn zero_slots_gets_nothing() {
        let db = db_with(3);
        let picked = pick_results(
            &db,
            unsent(&db),
            WorkRequest {
                client: ClientId(0),
                slots_wanted: 0,
            },
            10,
        );
        assert!(picked.is_empty());
    }

    #[test]
    fn empty_feeder_gets_nothing() {
        let db = db_with(0);
        let picked = pick_results(
            &db,
            std::iter::empty(),
            WorkRequest {
                client: ClientId(0),
                slots_wanted: 4,
            },
            10,
        );
        assert!(picked.is_empty());
    }
}
