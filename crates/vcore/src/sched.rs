//! Scheduler matchmaking: which results does a work request get?
//!
//! BOINC's scheduler picks from the feeder's cache, honouring:
//! * one result per work unit per host (replicas must land on distinct
//!   machines or quorum validation would be meaningless);
//! * the client's requested amount (here: task slots);
//! * a per-RPC grant ceiling.
//!
//! The decision function is pure so it can be unit-tested exhaustively;
//! the engine applies its choices to the database.

use crate::db::Db;
use crate::types::{ClientId, ResultId};

/// A client's work request, as seen by the scheduler.
#[derive(Clone, Copy, Debug)]
pub struct WorkRequest {
    /// Requesting client.
    pub client: ClientId,
    /// Task slots the client wants filled.
    pub slots_wanted: u32,
}

/// Chooses up to `min(slots_wanted, max_per_rpc)` results for `req`
/// from the feeder's candidate list, skipping work units the client
/// already holds a replica of. Candidates are consumed in order
/// (feeder order == creation order, BOINC's FIFO default).
pub fn pick_results(
    db: &Db,
    candidates: &[ResultId],
    req: WorkRequest,
    max_per_rpc: u32,
) -> Vec<ResultId> {
    let want = req.slots_wanted.min(max_per_rpc) as usize;
    let mut picked: Vec<ResultId> = Vec::with_capacity(want);
    for &rid in candidates {
        if picked.len() >= want {
            break;
        }
        // The feeder cache can lag the database: a candidate may have
        // been cancelled (trust policy dropping spare replicas) or
        // granted since it was cached. Only unsent results are eligible.
        if db.result(rid).state != crate::workunit::ResultState::Unsent {
            continue;
        }
        let wu = db.result(rid).wu;
        if db.client_has_wu(req.client, wu) {
            continue;
        }
        // Also skip if we already picked another result of the same WU
        // in this very grant.
        if picked.iter().any(|&p| db.result(p).wu == wu) {
            continue;
        }
        picked.push(rid);
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workunit::WorkUnitSpec;
    use vmr_desim::SimTime;

    fn db_with(n_wus: usize) -> Db {
        let mut db = Db::new();
        for i in 0..n_wus {
            db.insert_workunit(
                WorkUnitSpec::basic(format!("wu{i}"), "app", 1e9),
                SimTime::ZERO,
            );
        }
        db
    }

    fn unsent(db: &Db) -> Vec<ResultId> {
        db.unsent_results().collect()
    }

    #[test]
    fn grants_up_to_slots_wanted() {
        let db = db_with(5);
        let picked = pick_results(
            &db,
            &unsent(&db),
            WorkRequest {
                client: ClientId(0),
                slots_wanted: 3,
            },
            10,
        );
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn grant_capped_by_max_per_rpc() {
        let db = db_with(5);
        let picked = pick_results(
            &db,
            &unsent(&db),
            WorkRequest {
                client: ClientId(0),
                slots_wanted: 10,
            },
            2,
        );
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn never_two_replicas_of_same_wu_in_one_grant() {
        let db = db_with(1); // one WU, two replicas unsent
        let picked = pick_results(
            &db,
            &unsent(&db),
            WorkRequest {
                client: ClientId(0),
                slots_wanted: 5,
            },
            10,
        );
        assert_eq!(picked.len(), 1, "must not hand both replicas to one host");
    }

    #[test]
    fn skips_wus_already_held() {
        let mut db = db_with(2);
        // Client 0 already holds a replica of wu0.
        let wu0_results = db.results_of(crate::types::WuId(0)).to_vec();
        db.mark_sent(
            wu0_results[0],
            ClientId(0),
            SimTime::ZERO,
            SimTime::from_secs(1000),
        );
        let picked = pick_results(
            &db,
            &unsent(&db),
            WorkRequest {
                client: ClientId(0),
                slots_wanted: 5,
            },
            10,
        );
        // Only wu1's replica is eligible.
        assert_eq!(picked.len(), 1);
        assert_eq!(db.result(picked[0]).wu, crate::types::WuId(1));
    }

    #[test]
    fn other_client_still_gets_the_wu() {
        let mut db = db_with(1);
        let rids = db.results_of(crate::types::WuId(0)).to_vec();
        db.mark_sent(
            rids[0],
            ClientId(0),
            SimTime::ZERO,
            SimTime::from_secs(1000),
        );
        let picked = pick_results(
            &db,
            &unsent(&db),
            WorkRequest {
                client: ClientId(1),
                slots_wanted: 1,
            },
            10,
        );
        assert_eq!(picked.len(), 1);
    }

    #[test]
    fn stale_cancelled_candidates_are_skipped() {
        let mut db = db_with(1);
        let stale = unsent(&db); // cached before the cancellation
        let rids = db.results_of(crate::types::WuId(0)).to_vec();
        db.cancel_unsent(rids[0]);
        let picked = pick_results(
            &db,
            &stale,
            WorkRequest {
                client: ClientId(0),
                slots_wanted: 5,
            },
            10,
        );
        assert_eq!(
            picked,
            vec![rids[1]],
            "cancelled result must not be granted"
        );
    }

    #[test]
    fn zero_slots_gets_nothing() {
        let db = db_with(3);
        let picked = pick_results(
            &db,
            &unsent(&db),
            WorkRequest {
                client: ClientId(0),
                slots_wanted: 0,
            },
            10,
        );
        assert!(picked.is_empty());
    }

    #[test]
    fn empty_feeder_gets_nothing() {
        let db = db_with(0);
        let picked = pick_results(
            &db,
            &[],
            WorkRequest {
                client: ClientId(0),
                slots_wanted: 4,
            },
            10,
        );
        assert!(picked.is_empty());
    }
}
