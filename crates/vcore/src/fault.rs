//! Fault injection (§III.B's threat model).
//!
//! "Map output data … require validation before being used as input by
//! reduce tasks, since we have to consider byzantine behavior: malicious
//! users or errors during the computation."
//!
//! The plan marks a subset of clients byzantine (they report corrupted
//! fingerprints with some probability), injects transient inter-client
//! transfer failures, and can make clients vanish mid-task (churn).

use crate::types::ClientId;
use vmr_desim::{RngStream, SimDuration};

/// Fault-injection plan for one experiment.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Clients that corrupt their outputs.
    pub byzantine: Vec<ClientId>,
    /// Probability a byzantine client corrupts any given task's output.
    pub corruption_prob: f64,
    /// Probability any single inter-client transfer attempt fails
    /// (connection reset, peer asleep…).
    pub peer_transfer_failure_prob: f64,
    /// Per-task probability that a (non-byzantine) execution errors out
    /// and the client reports a client error.
    pub task_error_prob: f64,
    /// Clients that disappear: `(client, when)` — after `when` they stop
    /// responding entirely (no reports, no serving).
    pub dropouts: Vec<(ClientId, SimDuration)>,
}

impl FaultPlan {
    /// A fault-free plan (the paper's §IV experiments: "we did not
    /// consider node failure in our tests").
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Is `c` in the byzantine set?
    pub fn is_byzantine(&self, c: ClientId) -> bool {
        self.byzantine.contains(&c)
    }

    /// Should this particular task's output be corrupted?
    pub fn corrupt_now(&self, c: ClientId, rng: &mut RngStream) -> bool {
        self.is_byzantine(c) && rng.chance(self.corruption_prob)
    }

    /// Should this particular task error out client-side?
    pub fn task_errors_now(&self, rng: &mut RngStream) -> bool {
        rng.chance(self.task_error_prob)
    }

    /// Should this peer-transfer attempt fail?
    pub fn peer_attempt_fails(&self, rng: &mut RngStream) -> bool {
        rng.chance(self.peer_transfer_failure_prob)
    }

    /// When does `c` drop out, if ever?
    pub fn dropout_time(&self, c: ClientId) -> Option<SimDuration> {
        self.dropouts
            .iter()
            .find(|(cc, _)| *cc == c)
            .map(|(_, t)| *t)
    }

    /// Compiles the plan into sorted lookup tables for the hot path.
    pub fn index(&self) -> FaultIndex {
        FaultIndex::build(self)
    }
}

/// Compiled lookup tables over a [`FaultPlan`].
///
/// `is_byzantine`/`dropout_time` on the plan itself are linear scans of
/// the raw `Vec`s — fine for construction, wasteful when the engine
/// consults them on every task completion and every dropout arming.
/// The engine builds one `FaultIndex` per experiment and does binary
/// searches instead. Semantics match the plan exactly, including the
/// short-circuit in [`FaultIndex::corrupt_now`] (honest clients must
/// not draw from the rng) and first-entry-wins for duplicate dropout
/// rows (mirroring `Iterator::find` on the plan).
#[derive(Clone, Debug, Default)]
pub struct FaultIndex {
    /// Sorted, deduplicated byzantine set.
    byzantine: Vec<ClientId>,
    /// Sorted by client, first plan entry kept on duplicates.
    dropouts: Vec<(ClientId, SimDuration)>,
    corruption_prob: f64,
}

impl FaultIndex {
    /// Builds the index from a plan (once per experiment).
    pub fn build(plan: &FaultPlan) -> Self {
        let mut byzantine = plan.byzantine.clone();
        byzantine.sort_unstable();
        byzantine.dedup();
        let mut dropouts = plan.dropouts.clone();
        // Stable sort + keep-first preserves FaultPlan::dropout_time's
        // first-match semantics for duplicate clients.
        dropouts.sort_by_key(|(c, _)| *c);
        dropouts.dedup_by_key(|(c, _)| *c);
        FaultIndex {
            byzantine,
            dropouts,
            corruption_prob: plan.corruption_prob,
        }
    }

    /// Is `c` in the byzantine set?
    pub fn is_byzantine(&self, c: ClientId) -> bool {
        self.byzantine.binary_search(&c).is_ok()
    }

    /// Should this particular task's output be corrupted? Same rng
    /// discipline as [`FaultPlan::corrupt_now`]: the membership test
    /// short-circuits, so honest clients draw nothing.
    pub fn corrupt_now(&self, c: ClientId, rng: &mut RngStream) -> bool {
        self.is_byzantine(c) && rng.chance(self.corruption_prob)
    }

    /// When does `c` drop out, if ever?
    pub fn dropout_time(&self, c: ClientId) -> Option<SimDuration> {
        self.dropouts
            .binary_search_by_key(&c, |(cc, _)| *cc)
            .ok()
            .map(|i| self.dropouts[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmr_desim::RngStream;

    #[test]
    fn none_is_inert() {
        let f = FaultPlan::none();
        let mut rng = RngStream::new(1);
        assert!(!f.is_byzantine(ClientId(0)));
        assert!(!f.corrupt_now(ClientId(0), &mut rng));
        assert!(!f.task_errors_now(&mut rng));
        assert!(!f.peer_attempt_fails(&mut rng));
        assert_eq!(f.dropout_time(ClientId(0)), None);
    }

    #[test]
    fn byzantine_corruption_respects_probability() {
        let f = FaultPlan {
            byzantine: vec![ClientId(3)],
            corruption_prob: 1.0,
            ..FaultPlan::default()
        };
        let mut rng = RngStream::new(1);
        assert!(f.corrupt_now(ClientId(3), &mut rng));
        assert!(!f.corrupt_now(ClientId(4), &mut rng));
    }

    #[test]
    fn dropout_lookup() {
        let f = FaultPlan {
            dropouts: vec![(ClientId(2), SimDuration::from_secs(30))],
            ..FaultPlan::default()
        };
        assert_eq!(
            f.dropout_time(ClientId(2)),
            Some(SimDuration::from_secs(30))
        );
        assert_eq!(f.dropout_time(ClientId(1)), None);
    }

    #[test]
    fn index_matches_plan_on_every_client() {
        let f = FaultPlan {
            byzantine: vec![ClientId(7), ClientId(3), ClientId(7)],
            corruption_prob: 1.0,
            dropouts: vec![
                (ClientId(5), SimDuration::from_secs(10)),
                (ClientId(1), SimDuration::from_secs(20)),
                // Duplicate: plan's find() returns the first entry.
                (ClientId(5), SimDuration::from_secs(99)),
            ],
            ..FaultPlan::default()
        };
        let idx = f.index();
        for c in 0..10u32 {
            let c = ClientId(c);
            assert_eq!(idx.is_byzantine(c), f.is_byzantine(c), "{c}");
            assert_eq!(idx.dropout_time(c), f.dropout_time(c), "{c}");
        }
    }

    #[test]
    fn index_corrupt_now_preserves_rng_draw_order() {
        let f = FaultPlan {
            byzantine: vec![ClientId(2)],
            corruption_prob: 0.5,
            ..FaultPlan::default()
        };
        let idx = f.index();
        // Same seed, interleaved honest/byzantine queries: the index
        // must consume rng draws exactly when the plan does, so the two
        // streams stay in lockstep.
        let mut a = RngStream::new(42);
        let mut b = RngStream::new(42);
        for i in 0..64u32 {
            let c = ClientId(i % 4);
            assert_eq!(f.corrupt_now(c, &mut a), idx.corrupt_now(c, &mut b), "{i}");
        }
    }
}
