//! Fault injection (§III.B's threat model).
//!
//! "Map output data … require validation before being used as input by
//! reduce tasks, since we have to consider byzantine behavior: malicious
//! users or errors during the computation."
//!
//! The plan marks a subset of clients byzantine (they report corrupted
//! fingerprints with some probability), injects transient inter-client
//! transfer failures, and can make clients vanish mid-task (churn).
//!
//! Beyond the stationary byzantine set, three *time-aware* adversaries
//! target the trust subsystem specifically:
//! * **colluding cliques** — members corrupt every task with a *shared*
//!   deterministic wrong fingerprint, so enough clique replicas of one
//!   WU can win a quorum against the honest minority;
//! * **flaky-then-reliable hosts** — corrupt with some probability
//!   until `flaky_flip_time`, honest afterwards (hardware fixed, GPU
//!   driver updated…) — trust must be earnable back;
//! * **sleepers (trust poisoning)** — honest until `sleeper_wake_time`,
//!   then corrupt: the host farms trust under full replication, gets
//!   its quorum dropped to 1, and only randomized spot-checks can
//!   catch the defection.

use crate::types::ClientId;
use vmr_desim::{RngStream, SimDuration, SimTime};

/// What a task's output corruption looks like, if any.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corruption {
    /// Honest output.
    None,
    /// An independent random wrong fingerprint (classic byzantine).
    Random,
    /// The clique's shared wrong fingerprint, derived from this tag —
    /// identical across members, so colluders can agree.
    Clique(u64),
}

/// Fault-injection plan for one experiment.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Clients that corrupt their outputs.
    pub byzantine: Vec<ClientId>,
    /// Probability a byzantine client corrupts any given task's output.
    pub corruption_prob: f64,
    /// Probability any single inter-client transfer attempt fails
    /// (connection reset, peer asleep…).
    pub peer_transfer_failure_prob: f64,
    /// Per-task probability that a (non-byzantine) execution errors out
    /// and the client reports a client error.
    pub task_error_prob: f64,
    /// Clients that disappear: `(client, when)` — after `when` they stop
    /// responding entirely (no reports, no serving).
    pub dropouts: Vec<(ClientId, SimDuration)>,
    /// Colluding clique members (corrupt deterministically, shared
    /// fingerprint — no rng draws).
    pub clique: Vec<ClientId>,
    /// Tag the clique's shared wrong fingerprint is derived from.
    pub clique_tag: u64,
    /// Flaky-then-reliable hosts.
    pub flaky: Vec<ClientId>,
    /// Probability a flaky host corrupts a task before the flip.
    pub flaky_corruption_prob: f64,
    /// When flaky hosts become reliable.
    pub flaky_flip_time: SimDuration,
    /// Sleeper hosts (trust poisoning): honest, then defect.
    pub sleepers: Vec<ClientId>,
    /// When sleepers start corrupting.
    pub sleeper_wake_time: SimDuration,
    /// Probability a woken sleeper corrupts any given task.
    pub sleeper_corruption_prob: f64,
}

impl FaultPlan {
    /// A fault-free plan (the paper's §IV experiments: "we did not
    /// consider node failure in our tests").
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A seeded flaky-then-reliable schedule: `frac` of the `n_hosts`
    /// population corrupts outputs with probability `prob` until
    /// `flip_time`, then behaves honestly. The member set is drawn from
    /// its own `seed`, independent of the engine's streams.
    pub fn flaky_then_reliable(
        n_hosts: u32,
        frac: f64,
        prob: f64,
        flip_time: SimDuration,
        seed: u64,
    ) -> Self {
        FaultPlan {
            flaky: seeded_subset(n_hosts, frac, seed),
            flaky_corruption_prob: prob,
            flaky_flip_time: flip_time,
            ..FaultPlan::default()
        }
    }

    /// A colluding clique: `frac` of the population (seeded draw)
    /// corrupts *every* task with the shared fingerprint tagged `tag`,
    /// so clique replicas of one WU agree with each other.
    pub fn colluding_clique(n_hosts: u32, frac: f64, tag: u64, seed: u64) -> Self {
        FaultPlan {
            clique: seeded_subset(n_hosts, frac, seed),
            clique_tag: tag,
            ..FaultPlan::default()
        }
    }

    /// A trust-poisoning ramp: `frac` of the population (seeded draw)
    /// is honest until `wake_time`, then corrupts with probability
    /// `prob` — defecting only after trust is earned.
    pub fn trust_poisoning(
        n_hosts: u32,
        frac: f64,
        prob: f64,
        wake_time: SimDuration,
        seed: u64,
    ) -> Self {
        FaultPlan {
            sleepers: seeded_subset(n_hosts, frac, seed),
            sleeper_wake_time: wake_time,
            sleeper_corruption_prob: prob,
            ..FaultPlan::default()
        }
    }

    /// Is `c` in the byzantine set?
    pub fn is_byzantine(&self, c: ClientId) -> bool {
        self.byzantine.contains(&c)
    }

    /// Should this particular task's output be corrupted?
    pub fn corrupt_now(&self, c: ClientId, rng: &mut RngStream) -> bool {
        self.is_byzantine(c) && rng.chance(self.corruption_prob)
    }

    /// Time-aware corruption decision covering every schedule. Rng
    /// discipline: only the stationary-byzantine and currently-active
    /// flaky/sleeper branches draw; clique membership and honest
    /// clients consume nothing, so legacy plans keep their exact draw
    /// order.
    pub fn corruption_now(&self, c: ClientId, now: SimTime, rng: &mut RngStream) -> Corruption {
        if self.corrupt_now(c, rng) {
            return Corruption::Random;
        }
        if self.clique.contains(&c) {
            return Corruption::Clique(self.clique_tag);
        }
        if self.flaky.contains(&c)
            && now.as_micros() < self.flaky_flip_time.as_micros()
            && rng.chance(self.flaky_corruption_prob)
        {
            return Corruption::Random;
        }
        if self.sleepers.contains(&c)
            && now.as_micros() >= self.sleeper_wake_time.as_micros()
            && rng.chance(self.sleeper_corruption_prob)
        {
            return Corruption::Random;
        }
        Corruption::None
    }

    /// Should this particular task error out client-side?
    pub fn task_errors_now(&self, rng: &mut RngStream) -> bool {
        rng.chance(self.task_error_prob)
    }

    /// Should this peer-transfer attempt fail?
    pub fn peer_attempt_fails(&self, rng: &mut RngStream) -> bool {
        rng.chance(self.peer_transfer_failure_prob)
    }

    /// When does `c` drop out, if ever?
    pub fn dropout_time(&self, c: ClientId) -> Option<SimDuration> {
        self.dropouts
            .iter()
            .find(|(cc, _)| *cc == c)
            .map(|(_, t)| *t)
    }

    /// Compiles the plan into sorted lookup tables for the hot path.
    pub fn index(&self) -> FaultIndex {
        FaultIndex::build(self)
    }
}

/// Seeded draw of `round(frac * n_hosts)` distinct hosts, sorted.
fn seeded_subset(n_hosts: u32, frac: f64, seed: u64) -> Vec<ClientId> {
    let k = ((n_hosts as f64 * frac.clamp(0.0, 1.0)).round() as usize).min(n_hosts as usize);
    let mut ids: Vec<ClientId> = (0..n_hosts).map(ClientId).collect();
    let mut rng = RngStream::new(seed);
    rng.shuffle(&mut ids);
    ids.truncate(k);
    ids.sort_unstable();
    ids
}

/// Compiled lookup tables over a [`FaultPlan`].
///
/// `is_byzantine`/`dropout_time` on the plan itself are linear scans of
/// the raw `Vec`s — fine for construction, wasteful when the engine
/// consults them on every task completion and every dropout arming.
/// The engine builds one `FaultIndex` per experiment and does binary
/// searches instead. Semantics match the plan exactly, including the
/// short-circuit in [`FaultIndex::corrupt_now`] (honest clients must
/// not draw from the rng) and first-entry-wins for duplicate dropout
/// rows (mirroring `Iterator::find` on the plan).
#[derive(Clone, Debug, Default)]
pub struct FaultIndex {
    /// Sorted, deduplicated byzantine set.
    byzantine: Vec<ClientId>,
    /// Sorted by client, first plan entry kept on duplicates.
    dropouts: Vec<(ClientId, SimDuration)>,
    corruption_prob: f64,
    /// Sorted, deduplicated clique set.
    clique: Vec<ClientId>,
    clique_tag: u64,
    /// Sorted, deduplicated flaky set.
    flaky: Vec<ClientId>,
    flaky_corruption_prob: f64,
    flaky_flip_us: u64,
    /// Sorted, deduplicated sleeper set.
    sleepers: Vec<ClientId>,
    sleeper_wake_us: u64,
    sleeper_corruption_prob: f64,
}

fn sorted_set(v: &[ClientId]) -> Vec<ClientId> {
    let mut v = v.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

impl FaultIndex {
    /// Builds the index from a plan (once per experiment).
    pub fn build(plan: &FaultPlan) -> Self {
        let mut dropouts = plan.dropouts.clone();
        // Stable sort + keep-first preserves FaultPlan::dropout_time's
        // first-match semantics for duplicate clients.
        dropouts.sort_by_key(|(c, _)| *c);
        dropouts.dedup_by_key(|(c, _)| *c);
        FaultIndex {
            byzantine: sorted_set(&plan.byzantine),
            dropouts,
            corruption_prob: plan.corruption_prob,
            clique: sorted_set(&plan.clique),
            clique_tag: plan.clique_tag,
            flaky: sorted_set(&plan.flaky),
            flaky_corruption_prob: plan.flaky_corruption_prob,
            flaky_flip_us: plan.flaky_flip_time.as_micros(),
            sleepers: sorted_set(&plan.sleepers),
            sleeper_wake_us: plan.sleeper_wake_time.as_micros(),
            sleeper_corruption_prob: plan.sleeper_corruption_prob,
        }
    }

    /// Is `c` in the byzantine set?
    pub fn is_byzantine(&self, c: ClientId) -> bool {
        self.byzantine.binary_search(&c).is_ok()
    }

    /// Should this particular task's output be corrupted? Same rng
    /// discipline as [`FaultPlan::corrupt_now`]: the membership test
    /// short-circuits, so honest clients draw nothing.
    pub fn corrupt_now(&self, c: ClientId, rng: &mut RngStream) -> bool {
        self.is_byzantine(c) && rng.chance(self.corruption_prob)
    }

    /// Time-aware corruption decision; same semantics and rng draw
    /// order as [`FaultPlan::corruption_now`], over binary searches.
    pub fn corruption_now(&self, c: ClientId, now: SimTime, rng: &mut RngStream) -> Corruption {
        if self.corrupt_now(c, rng) {
            return Corruption::Random;
        }
        if self.clique.binary_search(&c).is_ok() {
            return Corruption::Clique(self.clique_tag);
        }
        if self.flaky.binary_search(&c).is_ok()
            && now.as_micros() < self.flaky_flip_us
            && rng.chance(self.flaky_corruption_prob)
        {
            return Corruption::Random;
        }
        if self.sleepers.binary_search(&c).is_ok()
            && now.as_micros() >= self.sleeper_wake_us
            && rng.chance(self.sleeper_corruption_prob)
        {
            return Corruption::Random;
        }
        Corruption::None
    }

    /// When does `c` drop out, if ever?
    pub fn dropout_time(&self, c: ClientId) -> Option<SimDuration> {
        self.dropouts
            .binary_search_by_key(&c, |(cc, _)| *cc)
            .ok()
            .map(|i| self.dropouts[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmr_desim::RngStream;

    #[test]
    fn none_is_inert() {
        let f = FaultPlan::none();
        let mut rng = RngStream::new(1);
        assert!(!f.is_byzantine(ClientId(0)));
        assert!(!f.corrupt_now(ClientId(0), &mut rng));
        assert!(!f.task_errors_now(&mut rng));
        assert!(!f.peer_attempt_fails(&mut rng));
        assert_eq!(f.dropout_time(ClientId(0)), None);
    }

    #[test]
    fn byzantine_corruption_respects_probability() {
        let f = FaultPlan {
            byzantine: vec![ClientId(3)],
            corruption_prob: 1.0,
            ..FaultPlan::default()
        };
        let mut rng = RngStream::new(1);
        assert!(f.corrupt_now(ClientId(3), &mut rng));
        assert!(!f.corrupt_now(ClientId(4), &mut rng));
    }

    #[test]
    fn dropout_lookup() {
        let f = FaultPlan {
            dropouts: vec![(ClientId(2), SimDuration::from_secs(30))],
            ..FaultPlan::default()
        };
        assert_eq!(
            f.dropout_time(ClientId(2)),
            Some(SimDuration::from_secs(30))
        );
        assert_eq!(f.dropout_time(ClientId(1)), None);
    }

    #[test]
    fn index_matches_plan_on_every_client() {
        let f = FaultPlan {
            byzantine: vec![ClientId(7), ClientId(3), ClientId(7)],
            corruption_prob: 1.0,
            dropouts: vec![
                (ClientId(5), SimDuration::from_secs(10)),
                (ClientId(1), SimDuration::from_secs(20)),
                // Duplicate: plan's find() returns the first entry.
                (ClientId(5), SimDuration::from_secs(99)),
            ],
            ..FaultPlan::default()
        };
        let idx = f.index();
        for c in 0..10u32 {
            let c = ClientId(c);
            assert_eq!(idx.is_byzantine(c), f.is_byzantine(c), "{c}");
            assert_eq!(idx.dropout_time(c), f.dropout_time(c), "{c}");
        }
    }

    #[test]
    fn flaky_then_reliable_flips_at_the_given_time() {
        let f = FaultPlan::flaky_then_reliable(40, 0.25, 1.0, SimDuration::from_secs(100), 7);
        assert_eq!(f.flaky.len(), 10, "frac of the population");
        let idx = f.index();
        let member = f.flaky[0];
        let mut rng = RngStream::new(1);
        assert_eq!(
            idx.corruption_now(member, SimTime::from_secs(99), &mut rng),
            Corruption::Random,
            "corrupts before the flip"
        );
        assert_eq!(
            idx.corruption_now(member, SimTime::from_secs(100), &mut rng),
            Corruption::None,
            "reliable from the flip on"
        );
        let honest = ClientId((0..40).find(|&i| !f.flaky.contains(&ClientId(i))).unwrap());
        assert_eq!(
            idx.corruption_now(honest, SimTime::from_secs(0), &mut rng),
            Corruption::None
        );
    }

    #[test]
    fn flaky_selection_is_seeded_and_deterministic() {
        let a = FaultPlan::flaky_then_reliable(100, 0.1, 1.0, SimDuration::from_secs(1), 42);
        let b = FaultPlan::flaky_then_reliable(100, 0.1, 1.0, SimDuration::from_secs(1), 42);
        let c = FaultPlan::flaky_then_reliable(100, 0.1, 1.0, SimDuration::from_secs(1), 43);
        assert_eq!(a.flaky, b.flaky, "same seed, same members");
        assert_ne!(a.flaky, c.flaky, "different seed, different members");
        assert!(a.flaky.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
    }

    #[test]
    fn clique_members_share_a_deterministic_fingerprint() {
        let f = FaultPlan::colluding_clique(40, 0.3, 0xC11, 5);
        assert_eq!(f.clique.len(), 12);
        let idx = f.index();
        let mut rng = RngStream::new(9);
        let before = rng.next_u64();
        let mut rng2 = RngStream::new(9);
        let _ = rng2.next_u64();
        for &m in &f.clique {
            assert_eq!(
                idx.corruption_now(m, SimTime::from_secs(5), &mut rng2),
                Corruption::Clique(0xC11)
            );
        }
        // Clique decisions consumed no randomness.
        let mut rng3 = RngStream::new(9);
        assert_eq!(rng3.next_u64(), before);
    }

    #[test]
    fn sleepers_defect_only_after_waking() {
        let f = FaultPlan::trust_poisoning(40, 0.1, 1.0, SimDuration::from_secs(500), 3);
        assert_eq!(f.sleepers.len(), 4);
        let idx = f.index();
        let s = f.sleepers[0];
        let mut rng = RngStream::new(2);
        assert_eq!(
            idx.corruption_now(s, SimTime::from_secs(499), &mut rng),
            Corruption::None
        );
        assert_eq!(
            idx.corruption_now(s, SimTime::from_secs(500), &mut rng),
            Corruption::Random
        );
    }

    #[test]
    fn index_corruption_now_matches_plan_in_lockstep() {
        let mut f = FaultPlan::flaky_then_reliable(8, 0.5, 0.5, SimDuration::from_secs(50), 11);
        f.byzantine = vec![ClientId(0)];
        f.corruption_prob = 0.5;
        f.sleepers = vec![ClientId(7)];
        f.sleeper_wake_time = SimDuration::from_secs(30);
        f.sleeper_corruption_prob = 0.5;
        f.clique = vec![ClientId(6)];
        f.clique_tag = 77;
        let idx = f.index();
        let mut a = RngStream::new(42);
        let mut b = RngStream::new(42);
        for i in 0..256u32 {
            let c = ClientId(i % 8);
            let t = SimTime::from_secs((i as u64 * 7) % 100);
            assert_eq!(
                f.corruption_now(c, t, &mut a),
                idx.corruption_now(c, t, &mut b),
                "{i}"
            );
        }
    }

    #[test]
    fn index_corrupt_now_preserves_rng_draw_order() {
        let f = FaultPlan {
            byzantine: vec![ClientId(2)],
            corruption_prob: 0.5,
            ..FaultPlan::default()
        };
        let idx = f.index();
        // Same seed, interleaved honest/byzantine queries: the index
        // must consume rng draws exactly when the plan does, so the two
        // streams stay in lockstep.
        let mut a = RngStream::new(42);
        let mut b = RngStream::new(42);
        for i in 0..64u32 {
            let c = ClientId(i % 4);
            assert_eq!(f.corrupt_now(c, &mut a), idx.corrupt_now(c, &mut b), "{i}");
        }
    }
}
