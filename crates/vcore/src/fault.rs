//! Fault injection (§III.B's threat model).
//!
//! "Map output data … require validation before being used as input by
//! reduce tasks, since we have to consider byzantine behavior: malicious
//! users or errors during the computation."
//!
//! The plan marks a subset of clients byzantine (they report corrupted
//! fingerprints with some probability), injects transient inter-client
//! transfer failures, and can make clients vanish mid-task (churn).

use crate::types::ClientId;
use vmr_desim::{RngStream, SimDuration};

/// Fault-injection plan for one experiment.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Clients that corrupt their outputs.
    pub byzantine: Vec<ClientId>,
    /// Probability a byzantine client corrupts any given task's output.
    pub corruption_prob: f64,
    /// Probability any single inter-client transfer attempt fails
    /// (connection reset, peer asleep…).
    pub peer_transfer_failure_prob: f64,
    /// Per-task probability that a (non-byzantine) execution errors out
    /// and the client reports a client error.
    pub task_error_prob: f64,
    /// Clients that disappear: `(client, when)` — after `when` they stop
    /// responding entirely (no reports, no serving).
    pub dropouts: Vec<(ClientId, SimDuration)>,
}

impl FaultPlan {
    /// A fault-free plan (the paper's §IV experiments: "we did not
    /// consider node failure in our tests").
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Is `c` in the byzantine set?
    pub fn is_byzantine(&self, c: ClientId) -> bool {
        self.byzantine.contains(&c)
    }

    /// Should this particular task's output be corrupted?
    pub fn corrupt_now(&self, c: ClientId, rng: &mut RngStream) -> bool {
        self.is_byzantine(c) && rng.chance(self.corruption_prob)
    }

    /// Should this particular task error out client-side?
    pub fn task_errors_now(&self, rng: &mut RngStream) -> bool {
        rng.chance(self.task_error_prob)
    }

    /// Should this peer-transfer attempt fail?
    pub fn peer_attempt_fails(&self, rng: &mut RngStream) -> bool {
        rng.chance(self.peer_transfer_failure_prob)
    }

    /// When does `c` drop out, if ever?
    pub fn dropout_time(&self, c: ClientId) -> Option<SimDuration> {
        self.dropouts
            .iter()
            .find(|(cc, _)| *cc == c)
            .map(|(_, t)| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmr_desim::RngStream;

    #[test]
    fn none_is_inert() {
        let f = FaultPlan::none();
        let mut rng = RngStream::new(1);
        assert!(!f.is_byzantine(ClientId(0)));
        assert!(!f.corrupt_now(ClientId(0), &mut rng));
        assert!(!f.task_errors_now(&mut rng));
        assert!(!f.peer_attempt_fails(&mut rng));
        assert_eq!(f.dropout_time(ClientId(0)), None);
    }

    #[test]
    fn byzantine_corruption_respects_probability() {
        let f = FaultPlan {
            byzantine: vec![ClientId(3)],
            corruption_prob: 1.0,
            ..FaultPlan::default()
        };
        let mut rng = RngStream::new(1);
        assert!(f.corrupt_now(ClientId(3), &mut rng));
        assert!(!f.corrupt_now(ClientId(4), &mut rng));
    }

    #[test]
    fn dropout_lookup() {
        let f = FaultPlan {
            dropouts: vec![(ClientId(2), SimDuration::from_secs(30))],
            ..FaultPlan::default()
        };
        assert_eq!(
            f.dropout_time(ClientId(2)),
            Some(SimDuration::from_secs(30))
        );
        assert_eq!(f.dropout_time(ClientId(1)), None);
    }
}
