//! Sharded server-core passes: a worker pool fanned out over the
//! database shards, the parallel transitioner pass, and batched
//! scheduler serving.
//!
//! Production BOINC scales its daemons by running `n` instances of
//! each, partitioned by `wu_id mod n` over the shared database. This
//! module is that partitioning applied to the in-process engine: the
//! tables are already split by id shard ([`crate::db::Db`]), so daemon
//! passes fan out one worker per shard and merge in global id order.
//!
//! **Determinism.** Every pass is split plan/apply:
//! * the *plan* phase reads `&Db` concurrently (one worker per shard;
//!   plans for distinct WUs touch disjoint rows), and
//! * the *apply* phase replays the plans **sequentially in global
//!   WU-id order**, which fixes result-id allocation and the WAL
//!   record stream.
//!
//! The merge order makes worker count and shard count invisible to the
//! output: `shards = 1` with no pool is bit-identical to `shards = 8`
//! on eight workers. Parallelism changes wall-clock only.

use crate::config::ShardConfig;
use crate::db::Db;
use crate::sched::{pick_results, Feeder, WorkRequest};
use crate::transition::{apply_transition, plan_transition, Transition, TransitionPlan};
use crate::types::{ClientId, ResultId, WuId};
use std::sync::atomic::{AtomicUsize, Ordering};
use vmr_desim::SimTime;

/// A fixed-width worker pool for per-shard fan-out.
///
/// Workers are scoped threads spawned per pass (the pass borrows the
/// database), claiming shard indices from a shared counter. A pool of
/// width 1 runs inline with zero thread overhead — the default, and
/// the configuration every bit-identity guarantee is proven against.
#[derive(Clone, Copy, Debug)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool running `workers` concurrent workers (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
        }
    }

    /// The inline pool: everything runs on the calling thread.
    pub fn sequential() -> Self {
        WorkerPool { workers: 1 }
    }

    /// The pool a [`ShardConfig`] asks for: one worker per shard up to
    /// the machine's parallelism when `parallel_daemons` is set,
    /// inline otherwise.
    pub fn from_config(cfg: &ShardConfig) -> Self {
        if !cfg.parallel_daemons || cfg.n <= 1 {
            return WorkerPool::sequential();
        }
        let hw = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        WorkerPool::new(cfg.n.min(hw))
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maps `f` over `0..n` (one call per shard), returning results in
    /// index order. Runs inline when the pool is sequential or there is
    /// only one shard; otherwise workers claim indices from a shared
    /// counter so an expensive shard doesn't serialize the rest.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.workers <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let slots: Vec<std::sync::Mutex<&mut Option<T>>> =
            out.iter_mut().map(std::sync::Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let v = f(i);
                    **slots[i].lock().unwrap() = Some(v);
                });
            }
        });
        drop(slots);
        out.into_iter()
            .map(|v| v.expect("worker pool slot unfilled"))
            .collect()
    }
}

/// One transitioner pass over every work unit: plans per shard on the
/// pool, applies in global WU-id order. Returns the non-trivial
/// transitions in that order (the engine's policy hooks consume them).
///
/// Bit-identical to calling [`crate::transition::transition_wu`] on
/// every WU in id order, at any shard count and pool width.
pub fn run_transition_pass(
    db: &mut Db,
    now: SimTime,
    pool: &WorkerPool,
) -> Vec<(WuId, Transition)> {
    let n = db.n_shards();
    let per_shard: Vec<Vec<(WuId, TransitionPlan)>> = {
        let db: &Db = db;
        pool.map(n, |s| {
            db.shard_wu_ids(s)
                .filter_map(|wu| match plan_transition(db, wu) {
                    TransitionPlan::None => None,
                    plan => Some((wu, plan)),
                })
                .collect()
        })
    };
    // Apply in global WU-id order: a k-way merge over the per-shard
    // lists (each already ascending).
    let total: usize = per_shard.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut heads: Vec<std::iter::Peekable<_>> = per_shard
        .into_iter()
        .map(|v| v.into_iter().peekable())
        .collect();
    loop {
        let mut best: Option<(usize, WuId)> = None;
        for (i, it) in heads.iter_mut().enumerate() {
            if let Some(&(wu, _)) = it.peek() {
                if best.map(|(_, b)| wu < b).unwrap_or(true) {
                    best = Some((i, wu));
                }
            }
        }
        let Some((i, _)) = best else { break };
        let (wu, plan) = heads[i].next().unwrap();
        let t = apply_transition(db, wu, plan, now);
        if t != Transition::None {
            out.push((wu, t));
        }
    }
    out
}

/// One granted work request out of a batch.
#[derive(Clone, Debug)]
pub struct BatchGrant {
    /// The requesting client.
    pub client: ClientId,
    /// Results granted to it (possibly empty).
    pub granted: Vec<ResultId>,
}

/// Serves a batch of scheduler work requests against the sharded
/// server core, in submission order: per request, candidates are the
/// feeder's id-order merged stream, grants are applied to the database
/// immediately (`mark_sent` with `deadline_of` the per-result report
/// deadline) and evicted from the feeder shard-locally.
///
/// Submission order *is* the serialization order, so the outcome is
/// identical to one RPC event per request through the engine; the
/// sharding buys the O(len/n) per-grant feeder eviction and shard-local
/// index updates that `shard_scaling` measures.
pub fn serve_batch(
    db: &mut Db,
    feeder: &mut Feeder,
    requests: &[WorkRequest],
    max_per_rpc: u32,
    now: SimTime,
    mut deadline_of: impl FnMut(&Db, ResultId) -> SimTime,
) -> Vec<BatchGrant> {
    let mut out = Vec::with_capacity(requests.len());
    for &req in requests {
        let picked = pick_results(db, feeder.candidates(), req, max_per_rpc);
        for &rid in &picked {
            let deadline = deadline_of(db, rid);
            db.mark_sent(rid, req.client, now, deadline);
            feeder.remove(rid);
        }
        out.push(BatchGrant {
            client: req.client,
            granted: picked,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transition::transition_wu;
    use crate::types::OutputFingerprint;
    use crate::workunit::{ResultOutcome, WorkUnitSpec};

    fn seeded_db(n_shards: usize, n_wus: usize) -> Db {
        let mut db = Db::with_shards(n_shards);
        for i in 0..n_wus {
            db.insert_workunit(
                WorkUnitSpec::basic(format!("wu{i}"), "app", 1e9),
                SimTime::ZERO,
            );
        }
        db
    }

    /// Reports outcomes that force a mix of plans: some WUs validate,
    /// some disagree (retry), some time out into failure.
    fn drive_reports(db: &mut Db) {
        let wus: Vec<WuId> = db.wu_ids().collect();
        for (i, wu) in wus.iter().enumerate() {
            let rids = db.results_of(*wu).to_vec();
            match i % 3 {
                0 => {
                    // Agreeing quorum.
                    for (k, rid) in rids.iter().enumerate() {
                        db.mark_sent(
                            *rid,
                            ClientId(k as u32),
                            SimTime::ZERO,
                            SimTime::from_secs(1000),
                        );
                        db.mark_reported(
                            *rid,
                            ResultOutcome::Success,
                            Some(OutputFingerprint(42)),
                            SimTime::from_secs(5),
                        );
                    }
                }
                1 => {
                    // Disagreement: retry needed.
                    for (k, rid) in rids.iter().enumerate() {
                        db.mark_sent(
                            *rid,
                            ClientId(k as u32),
                            SimTime::ZERO,
                            SimTime::from_secs(1000),
                        );
                        db.mark_reported(
                            *rid,
                            ResultOutcome::Success,
                            Some(OutputFingerprint(100 + k as u64)),
                            SimTime::from_secs(5),
                        );
                    }
                }
                _ => {
                    // One timeout, one still in flight.
                    db.mark_sent(rids[0], ClientId(0), SimTime::ZERO, SimTime::from_secs(10));
                    db.mark_timed_out(rids[0], SimTime::from_secs(10));
                }
            }
        }
    }

    #[test]
    fn pass_matches_sequential_transitioner_at_any_shard_count() {
        let now = SimTime::from_secs(20);
        // Reference: sequential transition_wu over a single-shard db.
        let mut reference = seeded_db(1, 17);
        drive_reports(&mut reference);
        let mut expected = Vec::new();
        for wu in reference.wu_ids().collect::<Vec<_>>() {
            match transition_wu(&mut reference, wu, now) {
                Transition::None => {}
                t => expected.push((wu, t)),
            }
        }
        for (shards, workers) in [(1, 1), (2, 1), (4, 2), (8, 4)] {
            let mut db = seeded_db(shards, 17);
            drive_reports(&mut db);
            let got = run_transition_pass(&mut db, now, &WorkerPool::new(workers));
            assert_eq!(
                got, expected,
                "transition pass diverged at {shards} shards / {workers} workers"
            );
            assert_eq!(
                db.encode_state(),
                reference.encode_state(),
                "db state diverged at {shards} shards / {workers} workers"
            );
        }
    }

    #[test]
    fn worker_pool_map_preserves_index_order() {
        for workers in [1usize, 2, 4] {
            let pool = WorkerPool::new(workers);
            let out = pool.map(13, |i| i * i);
            assert_eq!(out, (0..13).map(|i| i * i).collect::<Vec<_>>());
        }
        assert_eq!(WorkerPool::sequential().workers(), 1);
    }

    #[test]
    fn pool_from_config_is_inline_unless_asked() {
        let mut cfg = ShardConfig::default();
        assert_eq!(WorkerPool::from_config(&cfg).workers(), 1);
        cfg.n = 4;
        assert_eq!(WorkerPool::from_config(&cfg).workers(), 1);
        cfg.parallel_daemons = true;
        assert!(WorkerPool::from_config(&cfg).workers() >= 1);
    }

    #[test]
    fn serve_batch_matches_per_request_serving() {
        let pool = WorkerPool::sequential();
        let reqs: Vec<WorkRequest> = (0..6)
            .map(|c| WorkRequest {
                client: ClientId(c),
                slots_wanted: 2,
            })
            .collect();
        let mut grants_by_shardcount: Vec<Vec<BatchGrant>> = Vec::new();
        for shards in [1usize, 4] {
            let mut db = seeded_db(shards, 5);
            let mut feeder = Feeder::new(shards);
            feeder.refill(&db, 100, &pool);
            let grants = serve_batch(&mut db, &mut feeder, &reqs, 4, SimTime::ZERO, |_, _| {
                SimTime::from_secs(1000)
            });
            // Every grant respects the one-replica-per-client rule.
            for g in &grants {
                let mut wus: Vec<WuId> = g.granted.iter().map(|&r| db.result(r).wu).collect();
                wus.sort_unstable();
                wus.dedup();
                assert_eq!(wus.len(), g.granted.len());
            }
            grants_by_shardcount.push(grants);
        }
        let a = &grants_by_shardcount[0];
        let b = &grants_by_shardcount[1];
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.client, y.client);
            assert_eq!(x.granted, y.granted, "grants diverged across shard counts");
        }
    }

    #[test]
    fn feeder_refill_is_shard_invariant() {
        for (shards, workers) in [(2usize, 1usize), (4, 2), (8, 4)] {
            let mut base_db = seeded_db(1, 40);
            let mut db = seeded_db(shards, 40);
            // Burn some results so the unsent set has gaps.
            for wu in [0u32, 3, 7, 11] {
                let rid = base_db.results_of(WuId(wu))[0];
                base_db.mark_sent(rid, ClientId(9), SimTime::ZERO, SimTime::from_secs(10));
                let rid = db.results_of(WuId(wu))[0];
                db.mark_sent(rid, ClientId(9), SimTime::ZERO, SimTime::from_secs(10));
            }
            let mut base_feeder = Feeder::new(1);
            base_feeder.refill(&base_db, 33, &WorkerPool::sequential());
            let mut feeder = Feeder::new(shards);
            feeder.refill(&db, 33, &WorkerPool::new(workers));
            assert_eq!(
                feeder.candidates().collect::<Vec<_>>(),
                base_feeder.candidates().collect::<Vec<_>>(),
                "refill diverged at {shards} shards"
            );
            assert_eq!(feeder.len(), 33);
            // Shard-local eviction preserves the merged order.
            let victim = base_feeder.candidates().nth(5).unwrap();
            base_feeder.remove(victim);
            feeder.remove(victim);
            assert_eq!(
                feeder.candidates().collect::<Vec<_>>(),
                base_feeder.candidates().collect::<Vec<_>>()
            );
        }
    }
}
