//! Client-side exponential backoff.
//!
//! BOINC clients avoid hammering the project server: every scheduler RPC
//! that yields no work doubles a per-project backoff delay, up to a cap.
//! The paper observes the consequence (§IV.B): a node that finishes its
//! task just after entering a long backoff cannot even *report* the
//! finished result until the backoff expires — stalling the whole
//! MapReduce phase transition. The cap in the paper's runs is 600 s.

use vmr_desim::{RngStream, SimDuration};

/// Exponential backoff state for one client.
#[derive(Clone, Debug)]
pub struct Backoff {
    /// Delay after the first empty reply.
    pub min: SimDuration,
    /// Cap on the delay (the paper's 600 s).
    pub max: SimDuration,
    /// Consecutive empty replies so far.
    failures: u32,
    /// Randomize the delay to `uniform[jitter_floor, 1] * delay`, as the
    /// real client does to de-synchronize volunteers.
    pub jitter_floor: f64,
}

impl Backoff {
    /// BOINC-flavoured defaults with the paper's 600 s cap.
    pub fn boinc_default() -> Self {
        Backoff {
            min: SimDuration::from_secs(60),
            max: SimDuration::from_secs(600),
            failures: 0,
            jitter_floor: 0.5,
        }
    }

    /// Custom bounds (used by the backoff-cap ablation sweep).
    pub fn with_bounds(min: SimDuration, max: SimDuration) -> Self {
        Backoff {
            min,
            max,
            failures: 0,
            jitter_floor: 0.5,
        }
    }

    /// Number of consecutive empty replies.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// True when the client is in its initial (no-failure) state.
    pub fn is_reset(&self) -> bool {
        self.failures == 0
    }

    /// Records a reply that carried work: backoff fully resets.
    pub fn on_work_received(&mut self) {
        self.failures = 0;
    }

    /// Records an empty reply and returns the delay to wait before the
    /// next scheduler RPC.
    pub fn on_empty_reply(&mut self, rng: &mut RngStream) -> SimDuration {
        self.failures = self.failures.saturating_add(1);
        self.current_delay(rng)
    }

    /// The delay implied by the current failure count, with jitter.
    pub fn current_delay(&self, rng: &mut RngStream) -> SimDuration {
        let exp = self.failures.saturating_sub(1).min(32);
        let base = self.min.saturating_mul(1u64 << exp).min(self.max);
        let jitter = rng.uniform_f64(self.jitter_floor, 1.0);
        SimDuration::from_secs_f64(base.as_secs_f64() * jitter).max(SimDuration::from_secs(1))
    }

    /// Deterministic (jitter-free) delay bound for the current failure
    /// count — the value tests assert against.
    pub fn nominal_delay(&self) -> SimDuration {
        let exp = self.failures.saturating_sub(1).min(32);
        self.min.saturating_mul(1u64 << exp).min(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmr_desim::RngStream;

    #[test]
    fn doubles_until_cap() {
        let mut b = Backoff::boinc_default();
        let mut rng = RngStream::new(1);
        let mut last_nominal = SimDuration::ZERO;
        for i in 1..=6 {
            b.on_empty_reply(&mut rng);
            let nominal = b.nominal_delay();
            assert!(nominal >= last_nominal, "delay should not shrink");
            last_nominal = nominal;
            if i <= 4 {
                assert_eq!(nominal, SimDuration::from_secs(60 * (1 << (i - 1))));
            }
        }
        assert_eq!(b.nominal_delay(), SimDuration::from_secs(600), "capped");
    }

    #[test]
    fn work_resets() {
        let mut b = Backoff::boinc_default();
        let mut rng = RngStream::new(1);
        b.on_empty_reply(&mut rng);
        b.on_empty_reply(&mut rng);
        assert_eq!(b.failures(), 2);
        b.on_work_received();
        assert!(b.is_reset());
        assert_eq!(b.nominal_delay(), SimDuration::from_secs(60));
    }

    #[test]
    fn jitter_within_bounds() {
        let mut b = Backoff::boinc_default();
        let mut rng = RngStream::new(42);
        for _ in 0..200 {
            let d = b.on_empty_reply(&mut rng);
            let nominal = b.nominal_delay().as_secs_f64();
            let got = d.as_secs_f64();
            assert!(
                got <= nominal + 1e-6,
                "jitter above nominal: {got} > {nominal}"
            );
            assert!(got >= 0.5 * nominal - 1e-6, "jitter below floor: {got}");
        }
    }

    #[test]
    fn delay_never_below_one_second() {
        let mut b = Backoff::with_bounds(SimDuration::from_micros(10), SimDuration::from_secs(1));
        let mut rng = RngStream::new(1);
        assert!(b.on_empty_reply(&mut rng) >= SimDuration::from_secs(1));
    }

    #[test]
    fn huge_failure_count_saturates() {
        let mut b = Backoff::boinc_default();
        let mut rng = RngStream::new(1);
        for _ in 0..100 {
            b.on_empty_reply(&mut rng);
        }
        assert_eq!(b.nominal_delay(), SimDuration::from_secs(600));
    }
}
