//! Property tests for the middleware's replication/validation state
//! machine and the backoff policy.

use proptest::prelude::*;
use vmr_desim::{RngStream, SimDuration, SimTime};
use vmr_vcore::transition::{transition_wu, Transition};
use vmr_vcore::{
    check_quorum, Backoff, ClientId, Db, OutputFingerprint, ResultOutcome, Verdict, WorkUnitSpec,
    WuState,
};

proptest! {
    /// The quorum verdict is permutation-invariant in the *canonical
    /// choice* and always internally consistent: agreeing results all
    /// share the canonical fingerprint, dissenting ones never do, and
    /// together they partition the input.
    #[test]
    fn quorum_verdict_consistent(
        fps in proptest::collection::vec(0u64..6, 0..12),
        quorum in 1u32..5,
    ) {
        let fps: Vec<OutputFingerprint> = fps.into_iter().map(OutputFingerprint).collect();
        match check_quorum(&fps, quorum) {
            Verdict::Valid { canonical, agreeing, dissenting } => {
                prop_assert!(agreeing.len() as u32 >= quorum);
                for &i in &agreeing {
                    prop_assert_eq!(fps[i], canonical);
                }
                for &i in &dissenting {
                    prop_assert_ne!(fps[i], canonical);
                }
                let mut all: Vec<usize> = agreeing.iter().chain(&dissenting).copied().collect();
                all.sort_unstable();
                prop_assert_eq!(all, (0..fps.len()).collect::<Vec<_>>());
                // No strictly larger agreeing group exists.
                for fp in &fps {
                    let n = fps.iter().filter(|g| *g == fp).count();
                    prop_assert!(n <= agreeing.len());
                }
            }
            Verdict::Inconclusive => {
                // No fingerprint reaches the quorum.
                for fp in &fps {
                    let n = fps.iter().filter(|g| *g == fp).count() as u32;
                    prop_assert!(n < quorum || quorum == 0);
                }
            }
        }
    }

    /// Driving a work unit with an arbitrary report schedule never
    /// breaks the invariants: results_created ≤ max_total_results; a
    /// validated WU has a canonical fingerprint matching ≥ quorum
    /// successes; a failed WU exhausted its budget.
    #[test]
    fn transitioner_invariants(
        // Each event: (client_pick, outcome: 0=honest,1=corrupt,2=error,3=timeout)
        events in proptest::collection::vec((0u32..12, 0u8..4), 1..30),
        quorum in 1u32..4,
        extra_replicas in 0u32..3,
    ) {
        let mut db = Db::new();
        let mut spec = WorkUnitSpec::basic("w", "app", 1e9);
        spec.min_quorum = quorum;
        spec.target_nresults = quorum + extra_replicas;
        spec.max_total_results = (quorum + extra_replicas) * 3;
        let wu = db.insert_workunit(spec, SimTime::ZERO);

        let honest = OutputFingerprint(7777);
        let mut t = 1u64;
        #[allow(clippy::explicit_counter_loop)]
        for (client_pick, outcome) in events {
            if db.wu(wu).state != WuState::Active {
                break;
            }
            // Send an unsent result to a client that doesn't have one.
            let unsent: Vec<_> = db.unsent_results().collect();
            let Some(&rid) = unsent.first() else { break };
            // Find an eligible client deterministically from the pick.
            let mut client = None;
            for off in 0..12u32 {
                let c = ClientId((client_pick + off) % 12);
                if !db.client_has_wu(c, wu) {
                    client = Some(c);
                    break;
                }
            }
            let Some(c) = client else { break };
            let now = SimTime::from_secs(t);
            t += 1;
            db.mark_sent(rid, c, now, now + SimDuration::from_secs(100));
            match outcome {
                0 => { db.mark_reported(rid, ResultOutcome::Success, Some(honest), now); }
                1 => { db.mark_reported(rid, ResultOutcome::Success,
                        Some(OutputFingerprint(1000 + c.0 as u64)), now); }
                2 => { db.mark_reported(rid, ResultOutcome::Error, None, now); }
                _ => { db.mark_timed_out(rid, now); }
            }
            let _ = transition_wu(&mut db, wu, now);

            // Invariants after every step.
            let w = db.wu(wu);
            prop_assert!(w.results_created <= w.spec.max_total_results);
            match w.state {
                WuState::Validated => {
                    let canonical = w.canonical.expect("validated without canonical");
                    let matching = db.results_of(wu).iter().filter(|&&r| {
                        db.result(r).is_success()
                            && db.result(r).fingerprint == Some(canonical)
                    }).count() as u32;
                    prop_assert!(matching >= quorum);
                }
                WuState::Failed => {
                    prop_assert_eq!(w.results_created, w.spec.max_total_results);
                }
                WuState::Active => {}
            }
        }
        // Terminal transitions are sticky.
        let state = db.wu(wu).state;
        let after = transition_wu(&mut db, wu, SimTime::from_secs(10_000));
        if state != WuState::Active {
            prop_assert_eq!(after, Transition::None);
            prop_assert_eq!(db.wu(wu).state, state);
        }
    }

    /// Backoff delays are always within [min(1s, …), max] and reset on
    /// work, for any interleaving of empty replies and grants.
    #[test]
    fn backoff_bounds_hold(
        ops in proptest::collection::vec(any::<bool>(), 1..60),
        min_s in 1u64..120,
        max_s in 120u64..2000,
        seed in any::<u64>(),
    ) {
        let mut b = Backoff::with_bounds(
            SimDuration::from_secs(min_s),
            SimDuration::from_secs(max_s),
        );
        let mut rng = RngStream::new(seed);
        for op in ops {
            if op {
                let d = b.on_empty_reply(&mut rng);
                prop_assert!(d <= SimDuration::from_secs(max_s));
                prop_assert!(d >= SimDuration::from_secs(1));
                // Jitter floor: at least half the nominal.
                let nominal = b.nominal_delay();
                prop_assert!(d.as_secs_f64() >= 0.5 * nominal.as_secs_f64() - 1e-6);
            } else {
                b.on_work_received();
                prop_assert!(b.is_reset());
                prop_assert_eq!(b.nominal_delay(), SimDuration::from_secs(min_s).max(SimDuration::from_secs(1)));
            }
        }
    }

    /// With `enabled: false`, every other trust knob must be inert:
    /// for any knob values and seed, a full engine run is bit-identical
    /// (stats, end time, and the canonical encodings of the journaled
    /// server state) to the fixed-quorum baseline under the default
    /// config. This is the guarantee that lets the trust subsystem ride
    /// in the engine unconditionally.
    #[test]
    fn trust_disabled_is_bit_identical_to_fixed_quorum(
        seed in any::<u64>(),
        threshold in 0.0f64..1.0,
        decay in 0.01f64..0.99,
        punish in 0.01f64..0.99,
        probation in 0u64..6,
        spot in 0.0f64..1.0,
    ) {
        let run = |trust: vmr_vcore::TrustConfig| {
            let cfg = vmr_vcore::ProjectConfig {
                trust,
                ..Default::default()
            };
            let mut eng = vmr_vcore::Engine::builder(seed)
                .config(cfg)
                .clients((0..3).map(|_| {
                    (
                        vmr_vcore::HostProfile::pc3001(),
                        vmr_netsim::HostLink::symmetric_mbit(100.0, 0.000_5),
                    )
                }))
                .build();
            for i in 0..3 {
                let mut spec = WorkUnitSpec::basic(format!("w{i}"), "app", 2e9);
                spec.target_nresults = 2;
                spec.min_quorum = 2;
                eng.insert_workunit(spec);
            }
            let mut pol = vmr_vcore::NullPolicy;
            eng.run_until(&mut pol, SimTime::from_secs(40_000), |e| {
                e.db.all_wus_terminal()
            });
            (
                eng.now(),
                eng.stats.rpcs,
                eng.stats.grants,
                eng.stats.reports,
                eng.db.encode_state(),
                eng.credit.encode_state(),
                eng.assimilator.encode_state(),
            )
        };
        let t = vmr_vcore::TrustConfig {
            trust_threshold: threshold,
            decay,
            punish,
            probation_results: probation,
            spot_check_rate: spot,
            ..Default::default()
        };
        prop_assert!(!t.enabled, "default config must be disabled");
        prop_assert_eq!(run(t), run(vmr_vcore::TrustConfig::default()));
    }

    /// Scheduler matchmaking never hands two replicas of a WU to the
    /// same client, for arbitrary request orders.
    #[test]
    fn one_replica_per_host_always(
        n_wus in 1usize..8,
        requests in proptest::collection::vec((0u32..6, 1u32..4), 1..40),
    ) {
        let mut db = Db::new();
        for i in 0..n_wus {
            let mut spec = WorkUnitSpec::basic(format!("w{i}"), "app", 1e9);
            spec.target_nresults = 3;
            spec.min_quorum = 2;
            db.insert_workunit(spec, SimTime::ZERO);
        }
        let mut t = 1u64;
        for (client, slots) in requests {
            let cands: Vec<_> = db.unsent_results().collect();
            let picked = vmr_vcore::sched::pick_results(
                &db,
                cands,
                vmr_vcore::sched::WorkRequest { client: ClientId(client), slots_wanted: slots },
                8,
            );
            for rid in picked {
                let now = SimTime::from_secs(t);
                t += 1;
                db.mark_sent(rid, ClientId(client), now, now + SimDuration::from_secs(1000));
            }
        }
        // Check the global invariant.
        for i in 0..n_wus {
            let wu = vmr_vcore::WuId(i as u32);
            let mut holders: Vec<ClientId> = db
                .results_of(wu)
                .iter()
                .filter_map(|&r| db.result(r).client)
                .collect();
            let before = holders.len();
            holders.sort();
            holders.dedup();
            prop_assert_eq!(before, holders.len(), "duplicate holder on wu{}", i);
        }
    }
}
