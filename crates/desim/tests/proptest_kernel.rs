//! Property tests for the simulation kernel's ordering and determinism
//! invariants. These invariants are what let the experiment harness claim
//! bit-reproducibility of every table in EXPERIMENTS.md.

use proptest::prelude::*;
use vmr_desim::{EventQueue, SimDuration, SimTime, Simulation, Tally};

proptest! {
    /// Events always pop in non-decreasing time order, regardless of the
    /// order and times they were scheduled in.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..100_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((at, _, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    /// Same-time events pop in scheduling (FIFO) order.
    #[test]
    fn queue_fifo_within_timestamp(
        times in proptest::collection::vec(0u64..10, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last_per_time = std::collections::HashMap::new();
        while let Some((at, _, idx)) = q.pop() {
            if let Some(prev) = last_per_time.insert(at, idx) {
                prop_assert!(idx > prev, "FIFO violated at {:?}", at);
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_subset(
        times in proptest::collection::vec(0u64..1000, 1..100),
        kill_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule(SimTime::from_micros(t), i)))
            .collect();
        let mut killed = std::collections::HashSet::new();
        for ((i, id), &kill) in ids.iter().zip(kill_mask.iter()) {
            if kill {
                prop_assert!(q.cancel(*id));
                killed.insert(*i);
            }
        }
        let mut delivered = std::collections::HashSet::new();
        while let Some((_, _, idx)) = q.pop() {
            delivered.insert(idx);
        }
        for i in 0..times.len() {
            prop_assert_eq!(delivered.contains(&i), !killed.contains(&i));
        }
    }

    /// Two simulations with the same seed and same schedule deliver the
    /// same events at the same times and draw identical random values.
    #[test]
    fn determinism_across_runs(
        seed in any::<u64>(),
        delays in proptest::collection::vec(1u64..10_000, 1..50),
    ) {
        let run = |seed: u64| {
            let mut sim: Simulation<usize> = Simulation::new(seed);
            for (i, &d) in delays.iter().enumerate() {
                sim.schedule_in(SimDuration::from_millis(d), i);
            }
            let mut log = vec![];
            while let Some(ev) = sim.next_event() {
                log.push((ev.at, ev.payload, sim.rng().next_u64()));
            }
            log
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Welford tally mean/variance agree with the naive two-pass
    /// formulas for any finite input.
    #[test]
    fn tally_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut t = Tally::new();
        for &x in &xs {
            t.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((t.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((t.variance() - var).abs() < 1e-5 * var.abs().max(1.0));
    }

    /// Forked RNG streams with distinct labels do not produce identical
    /// prefixes (independence smoke test), while identical labels do.
    #[test]
    fn rng_fork_label_separation(seed in any::<u64>()) {
        let master = vmr_desim::RngStream::new(seed);
        let mut a1 = master.fork("alpha");
        let mut a2 = master.fork("alpha");
        let mut b = master.fork("beta");
        let xs1: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let xs2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        prop_assert_eq!(&xs1, &xs2);
        prop_assert_ne!(&xs1, &ys);
    }
}
