//! Timeline recording.
//!
//! Experiments record *spans* (named intervals attached to an actor, e.g.
//! "node-7 executes map result 12") and *points* (instant markers, e.g.
//! "reduce phase starts"). The Fig. 4 reproduction renders one lane per
//! node from these spans.

use crate::time::{SimDuration, SimTime};
use std::fmt::Write as _;

/// A named interval on some actor's lane.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Lane key, e.g. a node name.
    pub actor: String,
    /// What happened, e.g. `map:dl`, `map:exec`, `report`.
    pub kind: String,
    /// Free-form detail (task id etc.).
    pub detail: String,
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
}

impl Span {
    /// Span length.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// An instantaneous marker.
#[derive(Clone, Debug, PartialEq)]
pub struct Point {
    /// Lane key ("" for global markers).
    pub actor: String,
    /// Marker kind.
    pub kind: String,
    /// Free-form detail.
    pub detail: String,
    /// When it happened.
    pub at: SimTime,
}

/// An in-memory event timeline.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    spans: Vec<Span>,
    points: Vec<Point>,
    enabled: bool,
}

impl Timeline {
    /// A recording timeline.
    pub fn new() -> Self {
        Timeline {
            spans: Vec::new(),
            points: Vec::new(),
            enabled: true,
        }
    }

    /// A timeline that drops everything (zero overhead for sweeps).
    pub fn disabled() -> Self {
        Timeline {
            spans: Vec::new(),
            points: Vec::new(),
            enabled: false,
        }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Rebuilds a timeline from the span/point events retained in an
    /// observability journal, preserving recording order. This is how
    /// the Fig. 4 lanes are produced now: components write spans and
    /// points through [`vmr_obs::Journal`] and the experiment harness
    /// reconstructs the `Timeline` for rendering.
    pub fn from_journal(journal: &vmr_obs::Journal) -> Timeline {
        let mut tl = Timeline {
            spans: Vec::new(),
            points: Vec::new(),
            enabled: journal.is_enabled(),
        };
        for ev in journal.events() {
            match ev.kind {
                vmr_obs::EventKind::Span {
                    actor,
                    kind,
                    detail,
                    end_us,
                } => tl.spans.push(Span {
                    actor,
                    kind,
                    detail,
                    start: SimTime::from_micros(ev.t_us),
                    end: SimTime::from_micros(end_us),
                }),
                vmr_obs::EventKind::Point {
                    actor,
                    kind,
                    detail,
                } => tl.points.push(Point {
                    actor,
                    kind,
                    detail,
                    at: SimTime::from_micros(ev.t_us),
                }),
                _ => {}
            }
        }
        tl
    }

    /// Records a span.
    #[deprecated(
        since = "0.1.0",
        note = "record through vmr_obs::Journal::span and rebuild with Timeline::from_journal"
    )]
    pub fn span(
        &mut self,
        actor: impl Into<String>,
        kind: impl Into<String>,
        detail: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) {
        if !self.enabled {
            return;
        }
        self.spans.push(Span {
            actor: actor.into(),
            kind: kind.into(),
            detail: detail.into(),
            start,
            end,
        });
    }

    /// Records a point marker.
    #[deprecated(
        since = "0.1.0",
        note = "record through vmr_obs::Journal::point and rebuild with Timeline::from_journal"
    )]
    pub fn point(
        &mut self,
        actor: impl Into<String>,
        kind: impl Into<String>,
        detail: impl Into<String>,
        at: SimTime,
    ) {
        if !self.enabled {
            return;
        }
        self.points.push(Point {
            actor: actor.into(),
            kind: kind.into(),
            detail: detail.into(),
            at,
        });
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All recorded points, in recording order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Spans on one actor's lane, sorted by start time.
    pub fn lane(&self, actor: &str) -> Vec<&Span> {
        let mut v: Vec<&Span> = self.spans.iter().filter(|s| s.actor == actor).collect();
        v.sort_by_key(|s| (s.start, s.end));
        v
    }

    /// Distinct actor names, sorted.
    pub fn actors(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .spans
            .iter()
            .map(|s| s.actor.clone())
            .chain(self.points.iter().map(|p| p.actor.clone()))
            .filter(|a| !a.is_empty())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Latest span/point time (simulation-activity horizon).
    pub fn end_time(&self) -> SimTime {
        let s = self
            .spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO);
        let p = self
            .points
            .iter()
            .map(|p| p.at)
            .max()
            .unwrap_or(SimTime::ZERO);
        s.max(p)
    }

    /// Renders a fixed-width ASCII Gantt chart, one lane per actor —
    /// this is how the Fig. 4 binary prints per-node map timelines.
    ///
    /// `width` is the number of character cells spanning `[0, end_time]`;
    /// each span paints the first letter of its kind.
    pub fn render_ascii(&self, width: usize) -> String {
        let end = self.end_time();
        let total = end.as_secs_f64().max(1e-9);
        let mut out = String::new();
        let actors = self.actors();
        let name_w = actors.iter().map(|a| a.len()).max().unwrap_or(4).max(4);
        for actor in &actors {
            let mut row = vec![b'.'; width];
            for s in self.lane(actor) {
                let a = ((s.start.as_secs_f64() / total) * width as f64) as usize;
                let b = ((s.end.as_secs_f64() / total) * width as f64).ceil() as usize;
                let ch = s.kind.bytes().next().unwrap_or(b'#');
                for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                    *cell = ch;
                }
            }
            let _ = writeln!(out, "{actor:<name_w$} |{}|", String::from_utf8_lossy(&row));
        }
        let _ = writeln!(
            out,
            "{:<name_w$}  0{:>w$}",
            "",
            format!("{:.0}s", total),
            w = width
        );
        out
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn records_spans_and_points() {
        let mut tl = Timeline::new();
        tl.span("n1", "exec", "wu0", t(1), t(5));
        tl.point("", "phase", "reduce-start", t(6));
        assert_eq!(tl.spans().len(), 1);
        assert_eq!(tl.points().len(), 1);
        assert_eq!(tl.spans()[0].duration(), SimDuration::from_secs(4));
        assert_eq!(tl.end_time(), t(6));
    }

    #[test]
    fn disabled_timeline_drops_everything() {
        let mut tl = Timeline::disabled();
        tl.span("n1", "exec", "", t(0), t(1));
        tl.point("n1", "x", "", t(0));
        assert!(tl.spans().is_empty());
        assert!(tl.points().is_empty());
        assert!(!tl.is_enabled());
    }

    #[test]
    fn lanes_are_sorted_and_filtered() {
        let mut tl = Timeline::new();
        tl.span("b", "x", "", t(5), t(6));
        tl.span("a", "x", "", t(3), t(4));
        tl.span("b", "y", "", t(1), t(2));
        let lane_b = tl.lane("b");
        assert_eq!(lane_b.len(), 2);
        assert!(lane_b[0].start < lane_b[1].start);
        assert_eq!(tl.actors(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn from_journal_round_trips_spans_and_points() {
        let journal = vmr_obs::Journal::new();
        journal.span("n1", "exec", "wu0", t(1).as_micros(), t(5).as_micros());
        journal.point("", "phase", "reduce-start", t(6).as_micros());
        journal.record_with(7, || vmr_obs::EventKind::FlowStart { id: 1, bytes: 2 });
        let tl = Timeline::from_journal(&journal);
        let mut direct = Timeline::new();
        direct.span("n1", "exec", "wu0", t(1), t(5));
        direct.point("", "phase", "reduce-start", t(6));
        if cfg!(feature = "record") {
            assert_eq!(tl.spans(), direct.spans());
            assert_eq!(tl.points(), direct.points());
            assert_eq!(tl.end_time(), t(6));
        } else {
            assert!(tl.spans().is_empty());
        }
    }

    #[test]
    fn ascii_render_contains_lanes() {
        let mut tl = Timeline::new();
        tl.span("node-1", "exec", "", t(0), t(50));
        tl.span("node-2", "download", "", t(50), t(100));
        let art = tl.render_ascii(40);
        assert!(art.contains("node-1"));
        assert!(art.contains("node-2"));
        assert!(art.contains('e'));
        assert!(art.contains('d'));
    }
}
