//! Cancellable pending-event queue.
//!
//! A binary heap keyed on `(SimTime, sequence)` — the sequence number is a
//! monotonically increasing counter that makes the pop order of same-time
//! events equal to their scheduling order (FIFO tie-break). That property
//! is what makes whole-simulation runs deterministic.
//!
//! Cancellation is *lazy*: a cancelled event stays in the heap but is
//! skipped on pop. Lazy cancellation keeps both `schedule` and `cancel`
//! O(log n) / O(1) without a secondary index into the heap.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event, used to cancel it before it fires.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

impl EventId {
    /// Raw counter value (mainly useful in traces and tests).
    pub fn raw(self) -> u64 {
        self.0
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

// Ordering for the *max*-heap: we wrap in `Reverse` at the call sites
// instead; simpler to implement Ord directly as "later is smaller" — but
// clearer is Reverse<(at, seq)>. We implement natural ordering and use
// Reverse<Entry> in the heap.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The pending-event set of a simulation.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Seq numbers currently pending (scheduled, not yet fired/cancelled).
    pending: HashSet<u64>,
    /// Seq numbers cancelled but still physically present in the heap.
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
        self.pending.insert(seq);
        EventId(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// was still pending (i.e. this call actually cancelled something);
    /// cancelling an already-fired or already-cancelled event is a no-op.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.pending.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// True if `id` is still scheduled to fire.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.pending.contains(&id.0)
    }

    /// Time of the earliest pending (non-cancelled) event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pops the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        self.skip_cancelled();
        let Reverse(e) = self.heap.pop()?;
        self.pending.remove(&e.seq);
        Some((e.at, EventId(e.seq), e.payload))
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
        self.cancelled.clear();
    }

    fn skip_cancelled(&mut self) {
        while let Some(Reverse(e)) = self.heap.peek() {
            if self.cancelled.remove(&e.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), "c");
        q.schedule(t(1), "a");
        q.schedule(t(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_tie_break_at_same_time() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        let (_, _, p) = q.pop().unwrap();
        assert_eq!(p, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.is_pending(a));
        q.pop();
        assert!(!q.is_pending(a));
        assert!(!q.cancel(a), "cancelling a fired event must be a no-op");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(9)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_everything() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
