//! # vmr-desim — deterministic discrete-event simulation kernel
//!
//! The foundation of the BOINC-MR reproduction: everything timing-related
//! in the paper's evaluation (Table I makespans, the Fig. 4 backoff
//! straggler) is reproduced on top of this kernel instead of a physical
//! Emulab cluster.
//!
//! Design points:
//!
//! * **Integer virtual clock** ([`SimTime`], microseconds) — no float
//!   drift, exact event ordering.
//! * **FIFO tie-breaking** in the event queue — two runs with the same
//!   seed produce identical traces, making every experiment in the repo
//!   reproducible bit-for-bit.
//! * **Label-forked RNG streams** ([`RngStream::fork`]) — adding a random
//!   draw in one model component cannot perturb any other component.
//! * **Externally driven loop** ([`Simulation::next_event`]) — the model
//!   owns its state and matches on event payloads; the kernel never calls
//!   back into user code, avoiding `RefCell` webs.

#![warn(missing_docs)]

pub mod queue;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;

pub use queue::{EventId, EventQueue};
pub use rng::RngStream;
pub use sim::{Fired, Simulation};
pub use stats::{Histogram, Tally, TimeWeighted};
pub use time::{SimDuration, SimTime};
pub use trace::{Point, Span, Timeline};
