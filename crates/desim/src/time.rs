//! Virtual time for the discrete-event kernel.
//!
//! The clock is an integer count of **microseconds** since simulation
//! start. Integer time keeps event ordering exact and platform
//! independent — there is no floating-point drift, so two runs with the
//! same seed produce byte-identical traces.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in microseconds since time zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// microsecond and saturating on overflow or negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        let us = s * 1e6;
        if us >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(us.round() as u64)
        }
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Duration scaled by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn arithmetic_basics() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!((t + d).as_micros(), 14_000_000);
        assert_eq!((t - d).as_micros(), 6_000_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_secs(1)),
            SimDuration::MAX
        );
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimDuration::from_secs_f64(1e300), SimDuration::MAX);
    }

    #[test]
    fn checked_since() {
        let a = SimTime::from_secs(2);
        let b = SimTime::from_secs(5);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_secs(3)));
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }
}
