//! Run statistics: counters, tallies, time-weighted means, histograms.
//!
//! These accumulators are deliberately streaming (O(1) memory per sample
//! except the reservoir quantile sketch) so experiment sweeps can record
//! millions of samples without blowing up.

use crate::time::{SimDuration, SimTime};

/// Streaming tally of scalar samples: count / mean / min / max / variance
/// (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Tally {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Tally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Tally {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Records a duration sample in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another tally into this one (parallel-merge form of
    /// Welford/Chan).
    pub fn merge(&mut self, other: &Tally) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. "number of
/// concurrent transfers" or "feeder occupancy".
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    last_t: SimTime,
    last_v: f64,
    area: f64,
    start: SimTime,
    max: f64,
}

impl TimeWeighted {
    /// Starts tracking at `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> Self {
        TimeWeighted {
            last_t: t0,
            last_v: v0,
            area: 0.0,
            start: t0,
            max: v0,
        }
    }

    /// Sets the signal to `v` at time `t` (t must not precede the last
    /// update; equal times are fine and just replace the value).
    pub fn set(&mut self, t: SimTime, v: f64) {
        debug_assert!(t >= self.last_t, "TimeWeighted updates must be ordered");
        let dt = t.saturating_since(self.last_t).as_secs_f64();
        self.area += self.last_v * dt;
        self.last_t = t;
        self.last_v = v;
        self.max = self.max.max(v);
    }

    /// Adds `dv` to the current value at time `t`.
    pub fn add(&mut self, t: SimTime, dv: f64) {
        let v = self.last_v + dv;
        self.set(t, v);
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_v
    }

    /// Largest value seen.
    pub fn max_value(&self) -> f64 {
        self.max
    }

    /// Time-weighted mean over `[start, t]`.
    pub fn mean_until(&self, t: SimTime) -> f64 {
        let total = t.saturating_since(self.start).as_secs_f64();
        if total <= 0.0 {
            return self.last_v;
        }
        let tail = t.saturating_since(self.last_t).as_secs_f64();
        (self.area + self.last_v * tail) / total
    }
}

/// Fixed-bucket histogram over `[0, limit)` seconds with an overflow
/// bucket; used for task latency and backoff-delay distributions.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    width: f64,
    overflow: u64,
    tally: Tally,
}

impl Histogram {
    /// `n_buckets` equal-width buckets spanning `[0, limit)`.
    pub fn new(limit: f64, n_buckets: usize) -> Self {
        assert!(limit > 0.0 && n_buckets > 0);
        Histogram {
            buckets: vec![0; n_buckets],
            width: limit / n_buckets as f64,
            overflow: 0,
            tally: Tally::new(),
        }
    }

    /// Records one sample (negative samples clamp into bucket 0).
    pub fn record(&mut self, x: f64) {
        self.tally.record(x);
        let x = x.max(0.0);
        let idx = (x / self.width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.tally.count()
    }

    /// Samples beyond the histogram limit.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Underlying scalar tally (mean/min/max/stddev).
    pub fn tally(&self) -> &Tally {
        &self.tally
    }

    /// Approximate quantile (0..=1) by walking the buckets; returns the
    /// bucket upper edge containing the q-th sample. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i as f64 + 1.0) * self.width);
            }
        }
        // In the overflow region: report the observed max.
        self.tally.max()
    }

    /// The one obs snapshot shape every consumer uses: count, mean and
    /// p50/p95/p99/max, in this histogram's sample unit. Replaces the
    /// per-binary quantile plumbing the bench binaries used to carry.
    pub fn summary(&self) -> vmr_obs::HistogramSummary {
        vmr_obs::HistogramSummary {
            count: self.count(),
            mean: self.tally.mean(),
            p50: self.quantile(0.50).unwrap_or(0.0),
            p95: self.quantile(0.95).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
            max: self.tally.max().unwrap_or(0.0),
        }
    }

    /// Bucket counts (for rendering).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Bucket width in the sample unit.
    pub fn bucket_width(&self) -> f64 {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_basics() {
        let mut t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.min(), None);
        for x in [1.0, 2.0, 3.0, 4.0] {
            t.record(x);
        }
        assert_eq!(t.count(), 4);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.min(), Some(1.0));
        assert_eq!(t.max(), Some(4.0));
        assert!((t.variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.sum(), 10.0);
    }

    #[test]
    fn tally_merge_equals_combined() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Tally::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Tally::new();
        let mut b = Tally::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 3 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = Tally::new();
        let mut b = Tally::new();
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 5.0);
        let empty = Tally::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(10), 2.0); // 0 for 10s
        tw.set(SimTime::from_secs(20), 4.0); // 2 for 10s
                                             // up to t=30: 4 for 10s → area = 0*10 + 2*10 + 4*10 = 60 over 30s
        assert!((tw.mean_until(SimTime::from_secs(30)) - 2.0).abs() < 1e-12);
        assert_eq!(tw.current(), 4.0);
        assert_eq!(tw.max_value(), 4.0);
    }

    #[test]
    fn time_weighted_add() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.add(SimTime::from_secs(5), 2.0);
        assert_eq!(tw.current(), 3.0);
        tw.add(SimTime::from_secs(5), -1.0);
        assert_eq!(tw.current(), 2.0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.count(), 100);
        let med = h.quantile(0.5).unwrap();
        assert!((45.0..=55.0).contains(&med), "median {med}");
        assert_eq!(h.quantile(0.0).unwrap(), 1.0);
    }

    #[test]
    fn histogram_overflow_and_clamp() {
        let mut h = Histogram::new(10.0, 10);
        h.record(-5.0); // clamps into bucket 0
        h.record(50.0); // overflow
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(1.0), Some(50.0));
    }

    #[test]
    fn histogram_empty_quantile() {
        let h = Histogram::new(10.0, 10);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_summary_matches_quantiles() {
        let mut h = Histogram::new(100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, h.quantile(0.5).unwrap());
        assert_eq!(s.p95, h.quantile(0.95).unwrap());
        assert_eq!(s.p99, h.quantile(0.99).unwrap());
        assert_eq!(s.max, 99.5);
        assert!((s.mean - 50.0).abs() < 1e-9);
        let empty = Histogram::new(10.0, 10).summary();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p99, 0.0);
    }
}
