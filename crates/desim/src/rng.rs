//! Deterministic, forkable random-number streams.
//!
//! Every stochastic component of a model gets its own `RngStream`, forked
//! from the simulation's master stream by a *label*. Forking by label —
//! rather than drawing sub-seeds sequentially — means adding a new
//! component (or reordering initialization) does not shift the random
//! sequence observed by existing components, which keeps experiment
//! results comparable across code revisions.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic random stream (xoshiro-family generator from `rand`'s
/// `SmallRng`, seeded explicitly — never from OS entropy).
pub struct RngStream {
    rng: SmallRng,
    seed: u64,
}

impl RngStream {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        RngStream {
            rng: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// The child seed is `fnv1a(parent_seed || label)`, so the same
    /// (seed, label) pair always yields the same child stream.
    pub fn fork(&self, label: &str) -> RngStream {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.seed.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        RngStream::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.random()
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "uniform_range: empty range");
        self.rng.random_range(lo..hi)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.random_range(lo..hi)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Exponentially distributed draw with the given mean (seconds).
    /// Used for inter-arrival jitter; returns 0 for non-positive means.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse CDF; (1 - u) avoids ln(0).
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Draw from a truncated normal via rejection (mean, std, min bound).
    pub fn normal_min(&mut self, mean: f64, std: f64, min: f64) -> f64 {
        for _ in 0..64 {
            // Box–Muller.
            let u1: f64 = 1.0 - self.uniform();
            let u2: f64 = self.uniform();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let x = mean + std * z;
            if x >= min {
                return x;
            }
        }
        min.max(mean)
    }

    /// Picks a uniformly random element index from a non-empty slice len.
    pub fn pick(&mut self, len: usize) -> usize {
        assert!(len > 0, "pick from empty collection");
        self.rng.random_range(0..len)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.rng.random_range(0..=i);
            xs.swap(i, j);
        }
    }
}

impl std::fmt::Debug for RngStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RngStream(seed={:#x})", self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = RngStream::new(42);
        let mut b = RngStream::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_label_stable() {
        let parent = RngStream::new(42);
        let mut c1 = parent.fork("scheduler");
        let mut c2 = parent.fork("scheduler");
        let mut other = parent.fork("client-3");
        assert_eq!(c1.next_u64(), c2.next_u64());
        // Overwhelmingly unlikely to collide if streams are independent.
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = RngStream::new(1);
        for _ in 0..1000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = RngStream::new(1);
        assert!(!r.chance(0.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut r = RngStream::new(5);
        let n = 20_000;
        let mean = 10.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < 0.5,
            "observed mean {observed} too far from {mean}"
        );
        assert_eq!(r.exponential(0.0), 0.0);
        assert_eq!(r.exponential(-3.0), 0.0);
    }

    #[test]
    fn normal_min_respects_floor() {
        let mut r = RngStream::new(9);
        for _ in 0..1000 {
            assert!(r.normal_min(5.0, 10.0, 1.0) >= 1.0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = RngStream::new(3);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_range_bounds() {
        let mut r = RngStream::new(3);
        for _ in 0..1000 {
            let x = r.uniform_range(10, 20);
            assert!((10..20).contains(&x));
        }
    }
}
