//! The simulation driver.
//!
//! `Simulation<E>` owns the virtual clock and the pending-event queue for
//! one model run. The *model* (the "world": hosts, links, daemons…) lives
//! outside this type, in the downstream crates; the canonical loop is:
//!
//! ```
//! use vmr_desim::{Simulation, SimDuration};
//!
//! #[derive(Debug)]
//! enum Ev { Tick(u32) }
//!
//! let mut sim = Simulation::new(1);
//! sim.schedule_in(SimDuration::from_secs(1), Ev::Tick(0));
//! let mut fired = 0;
//! while let Some(ev) = sim.next_event() {
//!     match ev.payload {
//!         Ev::Tick(n) if n < 9 => {
//!             sim.schedule_in(SimDuration::from_secs(1), Ev::Tick(n + 1));
//!         }
//!         Ev::Tick(_) => {}
//!     }
//!     fired += 1;
//! }
//! assert_eq!(fired, 10);
//! assert_eq!(sim.now().as_secs_f64(), 10.0);
//! ```
//!
//! This externally-driven loop (rather than callbacks registered inside
//! the kernel) sidesteps shared-mutability knots: the world handles an
//! event with full `&mut` access to both itself and the simulation.

use crate::queue::{EventId, EventQueue};
use crate::rng::RngStream;
use crate::time::{SimDuration, SimTime};

/// A delivered event: when it fired, its id, and the model payload.
#[derive(Debug)]
pub struct Fired<E> {
    /// The instant the event fired; equal to `sim.now()` at delivery.
    pub at: SimTime,
    /// The id the event was scheduled under.
    pub id: EventId,
    /// Model-defined payload.
    pub payload: E,
}

/// Pre-resolved obs handles the kernel bumps while delivering events.
struct SimObs {
    events: vmr_obs::Counter,
    queue_depth: vmr_obs::Gauge,
}

/// A single deterministic simulation run.
pub struct Simulation<E> {
    now: SimTime,
    queue: EventQueue<E>,
    rng: RngStream,
    delivered: u64,
    horizon: SimTime,
    obs: Option<SimObs>,
}

impl<E> Simulation<E> {
    /// Creates a simulation at time zero with a seeded master RNG stream.
    pub fn new(seed: u64) -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            rng: RngStream::new(seed),
            delivered: 0,
            horizon: SimTime::MAX,
            obs: None,
        }
    }

    /// Attaches an observability bundle: the kernel then maintains the
    /// `desim.events_delivered` counter and `desim.queue_depth` gauge.
    pub fn attach_obs(&mut self, obs: &vmr_obs::Obs) {
        self.obs = Some(SimObs {
            events: obs.counter("desim.events_delivered"),
            queue_depth: obs.gauge("desim.queue_depth"),
        });
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Sets a hard stop time: events scheduled later than this are kept
    /// but never delivered by `next_event`.
    pub fn set_horizon(&mut self, horizon: SimTime) {
        self.horizon = horizon;
    }

    /// The master RNG stream (deterministic per seed). Prefer
    /// [`Simulation::fork_rng`] for per-component streams so that adding a
    /// random draw in one component cannot perturb another.
    pub fn rng(&mut self) -> &mut RngStream {
        &mut self.rng
    }

    /// Derives an independent, reproducible RNG stream for a component.
    pub fn fork_rng(&mut self, label: &str) -> RngStream {
        self.rng.fork(label)
    }

    /// Schedules `payload` at the absolute instant `at`.
    ///
    /// Scheduling in the past is a model bug; it panics in debug builds
    /// and clamps to `now` in release builds.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.queue.schedule(at.max(self.now), payload)
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.queue.schedule(self.now + delay, payload)
    }

    /// Cancels a pending event; no-op (returning `false`) if it already
    /// fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// True if `id` is still scheduled.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.queue.is_pending(id)
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Advances the clock to the next event and returns it, or `None`
    /// when the queue is exhausted or the next event lies beyond the
    /// horizon.
    pub fn next_event(&mut self) -> Option<Fired<E>> {
        let at = self.queue.peek_time()?;
        if at > self.horizon {
            return None;
        }
        let (at, id, payload) = self.queue.pop()?;
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        self.delivered += 1;
        if let Some(o) = &self.obs {
            o.events.inc();
            o.queue_depth.set(self.queue.len() as f64);
        }
        Some(Fired { at, id, payload })
    }

    /// Runs `handler` for every event until the queue drains (or the
    /// horizon/`max_events` safety valve trips). Returns the number of
    /// events delivered by this call.
    pub fn run<W>(
        &mut self,
        world: &mut W,
        max_events: u64,
        mut handler: impl FnMut(&mut Self, &mut W, Fired<E>),
    ) -> u64 {
        let start = self.delivered;
        while self.delivered - start < max_events {
            match self.next_event() {
                Some(ev) => handler(self, world, ev),
                None => break,
            }
        }
        self.delivered - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut sim: Simulation<u32> = Simulation::new(7);
        sim.schedule_at(SimTime::from_secs(5), 1);
        sim.schedule_at(SimTime::from_secs(2), 2);
        sim.schedule_in(SimDuration::from_secs(9), 3);
        let mut last = SimTime::ZERO;
        let mut seen = vec![];
        while let Some(ev) = sim.next_event() {
            assert!(ev.at >= last);
            last = ev.at;
            seen.push(ev.payload);
        }
        assert_eq!(seen, vec![2, 1, 3]);
        assert_eq!(sim.now(), SimTime::from_secs(9));
    }

    #[test]
    fn horizon_stops_delivery() {
        let mut sim: Simulation<&str> = Simulation::new(7);
        sim.schedule_at(SimTime::from_secs(1), "early");
        sim.schedule_at(SimTime::from_secs(100), "late");
        sim.set_horizon(SimTime::from_secs(10));
        assert_eq!(sim.next_event().unwrap().payload, "early");
        assert!(sim.next_event().is_none());
        assert_eq!(sim.pending(), 1, "late event is retained, not dropped");
    }

    #[test]
    fn cancel_through_sim() {
        let mut sim: Simulation<&str> = Simulation::new(7);
        let id = sim.schedule_at(SimTime::from_secs(1), "x");
        assert!(sim.is_pending(id));
        assert!(sim.cancel(id));
        assert!(sim.next_event().is_none());
    }

    #[test]
    fn run_loop_with_respawning_events() {
        let mut sim: Simulation<u32> = Simulation::new(7);
        sim.schedule_in(SimDuration::from_secs(1), 0);
        let mut world = 0u32; // counts handled events
        let n = sim.run(&mut world, 1_000, |sim, world, ev| {
            *world += 1;
            if ev.payload < 4 {
                sim.schedule_in(SimDuration::from_secs(1), ev.payload + 1);
            }
        });
        assert_eq!(n, 5);
        assert_eq!(world, 5);
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn max_events_safety_valve() {
        let mut sim: Simulation<()> = Simulation::new(7);
        sim.schedule_in(SimDuration::from_secs(1), ());
        let mut world = ();
        // Self-perpetuating event stream, bounded by max_events.
        let n = sim.run(&mut world, 50, |sim, _, _| {
            sim.schedule_in(SimDuration::from_secs(1), ());
        });
        assert_eq!(n, 50);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn identical_seeds_identical_draws() {
        let mut a: Simulation<()> = Simulation::new(99);
        let mut b: Simulation<()> = Simulation::new(99);
        let xa: Vec<u64> = (0..32).map(|_| a.rng().next_u64()).collect();
        let xb: Vec<u64> = (0..32).map(|_| b.rng().next_u64()).collect();
        assert_eq!(xa, xb);
    }
}
