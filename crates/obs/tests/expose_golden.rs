//! Full-string golden test of the exposition renderer.
//!
//! `render_prometheus` is a pure function of a [`Snapshot`] (plain data
//! in both the `record` and no-op builds), and the snapshot's key order
//! is deterministic — so the entire scrape body can be pinned byte for
//! byte. Anything that would silently change what operators' scrapers
//! ingest (name sanitization, label escaping, `# TYPE` deduplication,
//! quantile-series layout, non-finite spellings) fails this diff.

use vmr_obs::{render_prometheus, HistogramSummary, MetricValue, Snapshot};

fn golden_snapshot() -> Snapshot {
    Snapshot {
        entries: vec![
            // Same family under two label sets: one # TYPE header only.
            (
                "rtnet.http_requests{path=/metrics}".into(),
                MetricValue::Counter(7),
            ),
            (
                "rtnet.http_requests{path=with\"quote\\slash}".into(),
                MetricValue::Counter(1),
            ),
            (
                "rtnet.poll.serve_us".into(),
                MetricValue::Histogram(HistogramSummary {
                    count: 10,
                    mean: 150.0,
                    p50: 120.0,
                    p95: 300.0,
                    p99: 410.5,
                    max: 512.0,
                }),
            ),
            ("rtnet.served".into(), MetricValue::Counter(10)),
            (
                "vcore.queue_depth".into(),
                MetricValue::TimeGauge {
                    current: 3.0,
                    mean: 2.5,
                    max: 9.0,
                },
            ),
            ("vcore.share".into(), MetricValue::Gauge(f64::INFINITY)),
            ("7bad.name".into(), MetricValue::Gauge(1.0)),
        ],
    }
}

#[test]
fn prometheus_scrape_is_byte_stable() {
    let expected = "\
# TYPE rtnet_http_requests counter
rtnet_http_requests{path=\"/metrics\"} 7
rtnet_http_requests{path=\"with\\\"quote\\\\slash\"} 1
# TYPE rtnet_poll_serve_us summary
rtnet_poll_serve_us{quantile=\"0.5\"} 120
rtnet_poll_serve_us{quantile=\"0.95\"} 300
rtnet_poll_serve_us{quantile=\"0.99\"} 410.5
rtnet_poll_serve_us_count 10
rtnet_poll_serve_us_sum 1500
rtnet_poll_serve_us_max 512
# TYPE rtnet_served counter
rtnet_served 10
# TYPE vcore_queue_depth gauge
vcore_queue_depth 3
vcore_queue_depth_mean 2.5
vcore_queue_depth_max 9
# TYPE vcore_share gauge
vcore_share +Inf
# TYPE _7bad_name gauge
_7bad_name 1
";
    let got = render_prometheus(&golden_snapshot());
    assert_eq!(got, expected, "exposition output drifted:\n{got}");
}

#[test]
fn two_scrapes_of_one_snapshot_are_identical() {
    let snap = golden_snapshot();
    assert_eq!(render_prometheus(&snap), render_prometheus(&snap));
}
