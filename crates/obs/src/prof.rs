//! Wall-clock profiling scopes (record build).
//!
//! A [`Scope`] is resolved once per hot path; entering it when
//! profiling is off costs one relaxed atomic load. When on, the RAII
//! guard records elapsed wall-clock microseconds into a registry
//! histogram named `prof.<scope>_us`.

use crate::metrics::{Histo, Registry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The shared profiling switch.
#[derive(Clone, Debug, Default)]
pub struct Prof(Arc<AtomicBool>);

impl Prof {
    /// Turn all scopes sharing this switch on or off.
    pub fn set_enabled(&self, on: bool) {
        self.0.store(on, Ordering::Relaxed);
    }

    /// Whether scopes currently time themselves.
    pub fn is_enabled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Build a scope feeding `prof.<name>_us` in `registry`.
    pub fn scope(&self, registry: &Registry, name: &str) -> Scope {
        Scope {
            flag: self.0.clone(),
            histo: registry.histogram(&format!("prof.{name}_us")),
        }
    }
}

/// A pre-resolved profiling scope for one hot path.
#[derive(Clone, Debug)]
pub struct Scope {
    flag: Arc<AtomicBool>,
    histo: Histo,
}

impl Scope {
    /// Start timing; the returned guard records on drop. When
    /// profiling is off this is a single atomic load and the guard is
    /// inert.
    #[inline]
    pub fn enter(&self) -> ScopeGuard<'_> {
        ScopeGuard {
            start: if self.flag.load(Ordering::Relaxed) {
                Some(Instant::now())
            } else {
                None
            },
            histo: &self.histo,
        }
    }
}

/// RAII guard produced by [`Scope::enter`].
pub struct ScopeGuard<'a> {
    start: Option<Instant>,
    histo: &'a Histo,
}

impl Drop for ScopeGuard<'_> {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            self.histo.record(t0.elapsed().as_secs_f64() * 1e6);
        }
    }
}
