//! # vmr-obs — unified observability for the BOINC-MR reproduction
//!
//! Every crate in the workspace measures itself through this one layer
//! instead of ad-hoc crate-local counters:
//!
//! * **Metrics registry** ([`Registry`]) — counters, gauges,
//!   time-weighted gauges and log₂ histograms keyed by static names
//!   plus low-cardinality labels. Handles ([`Counter`], [`Gauge`],
//!   [`TimeGauge`], [`Histo`]) are resolved once and cached by the
//!   caller, so a hot-path increment is a single relaxed atomic bump.
//! * **Structured event journal** ([`Journal`]) — sim-time-stamped
//!   typed events ([`EventKind`]: RPC served, WU transition, flow
//!   start/complete, backoff armed, serving-window expiry, peer-fetch
//!   fallback, plus generic spans/points) in a bounded ring buffer
//!   with JSON-lines export.
//! * **Profiling scopes** ([`Scope`]) — wall-clock RAII timers around
//!   real hot paths (allocator waves, transitioner sweeps, rtnet
//!   serving threads) feeding histograms in the same registry under
//!   `prof.*_us` names. Off by default; enabled at runtime with
//!   [`Obs::set_profiling`].
//! * **Text exposition** ([`render_prometheus`], [`render_dashboard`],
//!   [`Dashboard`]) — pure functions of a [`Snapshot`], rendering the
//!   plaintext scrape format and a periodic operator dashboard; the
//!   rtnet poll server mounts both on its operations endpoint.
//!
//! The whole recorder is behind the **`record`** feature (on by
//! default). With `--no-default-features` every handle is a zero-sized
//! struct with empty method bodies: increments, journal appends and
//! scope timers compile to nothing, and snapshots come back empty.
//! Plain-data types ([`HistogramSummary`], [`Event`], [`Snapshot`])
//! exist in both modes so downstream APIs do not change shape.
//!
//! Metric naming scheme: `"<crate>.<subject>[_<unit>]{label=value}"`,
//! e.g. `netsim.flows_started`, `vcore.report_delay_s`,
//! `prof.netsim.realloc_wave_us`. See DESIGN.md §3.8.
//!
//! ```
//! let obs = vmr_obs::Obs::new();
//! let flows = obs.counter("netsim.flows_started");
//! flows.inc();
//! obs.journal.point("node-00", "report", "r7", 1_500_000);
//! assert_eq!(obs.snapshot().counter("netsim.flows_started"), flows.get());
//! ```

#![warn(missing_docs)]

mod expose;
mod types;
pub use expose::{render_dashboard, render_prometheus, Dashboard};
pub use types::{Event, EventKind, HistogramSummary, MetricValue, Snapshot};

#[cfg(feature = "record")]
mod journal;
#[cfg(feature = "record")]
mod metrics;
#[cfg(feature = "record")]
mod prof;
#[cfg(feature = "record")]
pub use journal::Journal;
#[cfg(feature = "record")]
pub use metrics::{Counter, Gauge, Histo, Registry, TimeGauge};
#[cfg(feature = "record")]
pub use prof::{Prof, Scope, ScopeGuard};

#[cfg(not(feature = "record"))]
mod noop;
#[cfg(not(feature = "record"))]
pub use noop::{Counter, Gauge, Histo, Journal, Prof, Registry, Scope, ScopeGuard, TimeGauge};

/// The observability bundle one component hands around: a metrics
/// registry, an event journal and a profiling switch. Cloning is cheap
/// (shared `Arc`s) and every clone records into the same sinks.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    /// Metric registry (counters / gauges / histograms).
    pub metrics: Registry,
    /// Structured event journal (bounded ring).
    pub journal: Journal,
    /// Profiling-scope switch shared by all [`Scope`]s.
    pub prof: Prof,
}

impl Obs {
    /// A live bundle: journal enabled, profiling off.
    pub fn new() -> Self {
        Obs::default()
    }

    /// A sink nobody reads: journal disabled, profiling off. Used as
    /// the default attachment so uninstrumented constructions pay only
    /// an atomic-load per would-be journal event.
    pub fn detached() -> Self {
        let o = Obs::default();
        o.journal.set_enabled(false);
        o
    }

    /// Resolve (or create) a counter handle.
    pub fn counter(&self, name: &str) -> Counter {
        self.metrics.counter(name)
    }

    /// Resolve a counter with low-cardinality labels; the full key is
    /// `name{k=v,...}`.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.metrics.counter_labeled(name, labels)
    }

    /// Resolve (or create) a gauge handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.metrics.gauge(name)
    }

    /// Resolve (or create) a time-weighted gauge handle.
    pub fn time_gauge(&self, name: &str) -> TimeGauge {
        self.metrics.time_gauge(name)
    }

    /// Resolve (or create) a histogram handle.
    pub fn histogram(&self, name: &str) -> Histo {
        self.metrics.histogram(name)
    }

    /// A wall-clock profiling scope recording elapsed microseconds
    /// into the registry histogram `prof.<name>_us`. Inert until
    /// [`Obs::set_profiling`]`(true)`.
    pub fn scope(&self, name: &str) -> Scope {
        self.prof.scope(&self.metrics, name)
    }

    /// Turn wall-clock profiling scopes on or off at runtime.
    pub fn set_profiling(&self, on: bool) {
        self.prof.set_enabled(on);
    }

    /// A point-in-time snapshot of every registered metric, sorted by
    /// name.
    pub fn snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }

    /// The metrics snapshot rendered as one JSON object.
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_round_trip() {
        let obs = Obs::new();
        let c = obs.counter("t.count");
        c.inc();
        c.add(4);
        obs.gauge("t.gauge").set(2.5);
        let h = obs.histogram("t.hist_us");
        for v in [1.0, 10.0, 100.0, 1000.0] {
            h.record(v);
        }
        obs.journal.point("a", "k", "d", 7);
        obs.journal.span("a", "k", "d", 7, 9);
        let snap = obs.snapshot();
        let json = snap.to_json();
        if cfg!(feature = "record") {
            assert_eq!(snap.counter("t.count"), 5);
            assert!(json.contains("\"t.gauge\""));
            assert_eq!(obs.journal.len(), 2);
            assert!(obs.journal.to_jsonl().lines().count() == 2);
        } else {
            assert_eq!(snap.counter("t.count"), 0);
            assert_eq!(obs.journal.len(), 0);
        }
    }

    #[test]
    fn detached_journal_records_nothing() {
        let obs = Obs::detached();
        obs.journal.point("a", "k", "", 1);
        obs.journal
            .record_with(2, || EventKind::FlowStart { id: 1, bytes: 8 });
        assert_eq!(obs.journal.len(), 0);
        assert!(!obs.journal.is_enabled());
    }

    #[cfg(feature = "record")]
    #[test]
    fn labeled_counters_are_distinct() {
        let obs = Obs::new();
        obs.counter_labeled("c", &[("dir", "up")]).inc();
        obs.counter_labeled("c", &[("dir", "down")]).add(2);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("c{dir=up}"), 1);
        assert_eq!(snap.counter("c{dir=down}"), 2);
    }

    #[cfg(feature = "record")]
    #[test]
    fn scope_records_when_enabled_only() {
        let obs = Obs::new();
        let scope = obs.scope("unit.test");
        drop(scope.enter());
        assert_eq!(obs.histogram("prof.unit.test_us").count(), 0);
        obs.set_profiling(true);
        drop(scope.enter());
        assert_eq!(obs.histogram("prof.unit.test_us").count(), 1);
    }

    #[cfg(feature = "record")]
    #[test]
    fn journal_ring_is_bounded() {
        let obs = Obs::new();
        let j = Journal::with_capacity(4);
        for i in 0..10u64 {
            j.point("a", "k", "", i);
        }
        assert_eq!(j.len(), 4);
        assert_eq!(j.dropped(), 6);
        let evs = j.events();
        assert_eq!(evs.first().unwrap().t_us, 6);
        drop(obs);
    }
}
