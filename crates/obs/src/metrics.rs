//! The metrics registry and its pre-resolved handles (record build).
//!
//! All handles are `Arc`-backed and lock-free on the record path
//! (relaxed atomics; time-weighted gauges take a short mutex), so they
//! are safe to share with rtnet's real serving threads.

use crate::types::{HistogramSummary, MetricValue, Snapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonic counter handle. Cloning shares the same cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value gauge handle (f64 stored as bits).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct TgState {
    start_us: u64,
    last_us: u64,
    last_v: f64,
    area: f64,
    max: f64,
    seen: bool,
}

/// A time-weighted gauge: callers time-stamp each `set`, the snapshot
/// reports last value, time-weighted mean and peak. Mirrors
/// `desim::stats::TimeWeighted` but is shareable and registry-hosted.
#[derive(Clone, Debug)]
pub struct TimeGauge(Arc<Mutex<TgState>>);

impl Default for TimeGauge {
    fn default() -> Self {
        TimeGauge(Arc::new(Mutex::new(TgState {
            start_us: 0,
            last_us: 0,
            last_v: 0.0,
            area: 0.0,
            max: 0.0,
            seen: false,
        })))
    }
}

impl TimeGauge {
    /// Record the value `v` holding from time `t_us` onward.
    /// Out-of-order timestamps are clamped to the last seen time.
    pub fn set(&self, t_us: u64, v: f64) {
        let mut s = self.0.lock().unwrap();
        if !s.seen {
            s.seen = true;
            s.start_us = t_us;
            s.last_us = t_us;
            s.last_v = v;
            s.max = v;
            return;
        }
        let t = t_us.max(s.last_us);
        s.area += s.last_v * (t - s.last_us) as f64;
        s.last_us = t;
        s.last_v = v;
        if v > s.max {
            s.max = v;
        }
    }

    /// Last value set.
    pub fn current(&self) -> f64 {
        self.0.lock().unwrap().last_v
    }

    fn value(&self) -> MetricValue {
        let s = self.0.lock().unwrap();
        let span = (s.last_us - s.start_us) as f64;
        let mean = if !s.seen {
            0.0
        } else if span > 0.0 {
            s.area / span
        } else {
            s.last_v
        };
        MetricValue::TimeGauge {
            current: s.last_v,
            mean,
            max: s.max,
        }
    }
}

const HISTO_BUCKETS: usize = 64;

#[derive(Debug)]
pub(crate) struct HistoCore {
    /// Log₂ buckets: bucket 0 holds v < 1, bucket i holds
    /// 2^(i-1) ≤ v < 2^i (last bucket open-ended).
    buckets: [AtomicU64; HISTO_BUCKETS],
    /// Sum of samples, f64 bits, CAS-accumulated.
    sum: AtomicU64,
    /// Max sample, f64 bits, CAS-raised.
    max: AtomicU64,
}

impl Default for HistoCore {
    fn default() -> Self {
        HistoCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0f64.to_bits()),
            max: AtomicU64::new(0f64.to_bits()),
        }
    }
}

fn cas_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

/// A histogram handle with power-of-two buckets. Quantiles come back
/// as the matching bucket's upper edge (factor-of-two resolution),
/// which is plenty for latency/size distributions and keeps recording
/// a two-atomic-op affair.
#[derive(Clone, Debug, Default)]
pub struct Histo(Arc<HistoCore>);

impl Histo {
    /// Record one sample (negative samples clamp to 0).
    pub fn record(&self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        let idx = if v < 1.0 {
            0
        } else {
            ((v as u64).ilog2() as usize + 1).min(HISTO_BUCKETS - 1)
        };
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        cas_f64(&self.0.sum, |s| s + v);
        cas_f64(&self.0.max, |m| if v > m { v } else { m });
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Quantile summary (p50/p95/p99 at log₂ resolution; max exact).
    pub fn summary(&self) -> HistogramSummary {
        let counts: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return HistogramSummary::default();
        }
        let sum = f64::from_bits(self.0.sum.load(Ordering::Relaxed));
        let max = f64::from_bits(self.0.max.load(Ordering::Relaxed));
        let q = |q: f64| -> f64 {
            let rank = ((q * total as f64).ceil() as u64).max(1);
            let mut seen = 0u64;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    // Upper edge of bucket i; the last bucket is
                    // open-ended so report the true max there.
                    return if i == 0 {
                        1.0
                    } else if i == HISTO_BUCKETS - 1 {
                        max
                    } else {
                        (1u64 << i) as f64
                    };
                }
            }
            max
        };
        HistogramSummary {
            count: total,
            mean: sum / total as f64,
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
            max,
        }
    }
}

#[derive(Debug)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    TimeGauge(TimeGauge),
    Histo(Histo),
}

/// The metric registry: a name → slot map handing out shared handles.
/// Cloning shares the registry. Lookups lock a mutex — resolve handles
/// once, outside hot loops.
#[derive(Clone, Debug, Default)]
pub struct Registry(Arc<Mutex<BTreeMap<String, Slot>>>);

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn full_key(name: &str, labels: &[(&str, &str)]) -> String {
        if labels.is_empty() {
            return name.to_string();
        }
        let mut k = String::with_capacity(name.len() + 16 * labels.len());
        k.push_str(name);
        k.push('{');
        for (i, (lk, lv)) in labels.iter().enumerate() {
            if i > 0 {
                k.push(',');
            }
            k.push_str(lk);
            k.push('=');
            k.push_str(lv);
        }
        k.push('}');
        k
    }

    /// Resolve (or create) a counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_labeled(name, &[])
    }

    /// Resolve (or create) a labeled counter.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = Self::full_key(name, labels);
        let mut map = self.0.lock().unwrap();
        match map
            .entry(key)
            .or_insert_with(|| Slot::Counter(Counter::default()))
        {
            Slot::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Resolve (or create) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.0.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(Gauge::default()))
        {
            Slot::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Resolve (or create) a time-weighted gauge.
    pub fn time_gauge(&self, name: &str) -> TimeGauge {
        let mut map = self.0.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Slot::TimeGauge(TimeGauge::default()))
        {
            Slot::TimeGauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Resolve (or create) a histogram.
    pub fn histogram(&self, name: &str) -> Histo {
        let mut map = self.0.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Slot::Histo(Histo::default()))
        {
            Slot::Histo(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Snapshot every metric, sorted by full key.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.0.lock().unwrap();
        Snapshot {
            entries: map
                .iter()
                .map(|(k, slot)| {
                    let v = match slot {
                        Slot::Counter(c) => MetricValue::Counter(c.get()),
                        Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                        Slot::TimeGauge(g) => g.value(),
                        Slot::Histo(h) => MetricValue::Histogram(h.summary()),
                    };
                    (k.clone(), v)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn histogram_quantiles_log2() {
        let h = Histo::default();
        for v in [0.5, 1.0, 3.0, 3.0, 100.0] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.max, 100.0);
        // rank(0.5) = 3 → third sample lands in bucket for [2,4).
        assert_eq!(s.p50, 4.0);
        assert_eq!(s.p99, 128.0);
        assert!((s.mean - 21.5).abs() < 1e-9);
    }

    #[test]
    fn time_gauge_weighted_mean() {
        let g = TimeGauge::default();
        g.set(0, 2.0);
        g.set(10, 4.0); // 2.0 held for 10us
        g.set(20, 0.0); // 4.0 held for 10us
        match g.value() {
            MetricValue::TimeGauge { current, mean, max } => {
                assert_eq!(current, 0.0);
                assert_eq!(max, 4.0);
                assert!((mean - 3.0).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let r = Registry::new();
        let c = r.counter("c");
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }
}
