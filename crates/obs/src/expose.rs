//! Text exposition of a metrics [`Snapshot`] — the live operations
//! surface behind `GET /metrics` and `GET /dash`.
//!
//! Two renderers, both pure functions of a [`Snapshot`] so they work
//! identically in the `record` and no-op builds:
//!
//! * [`render_prometheus`] — the plaintext exposition format scrapers
//!   understand (`# TYPE` headers, `name{label="value"} value` samples,
//!   quantile series for histograms). Output ordering is the snapshot's
//!   key ordering, which the registry sorts — so two scrapes of the
//!   same state are byte-identical and the golden test can diff them.
//! * [`render_dashboard`] — a human-oriented text panel grouping
//!   counters, gauges and histogram summaries under a title.
//!
//! [`Dashboard`] adds the one piece of state a periodic panel wants:
//! per-second rates for counters, computed against the previous render.

use crate::types::{MetricValue, Snapshot};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Splits a full registry key `name{k=v,k2=v2}` into the bare name and
/// its label pairs.
fn split_key(key: &str) -> (&str, Vec<(&str, &str)>) {
    let Some(brace) = key.find('{') else {
        return (key, Vec::new());
    };
    let name = &key[..brace];
    let inner = key[brace + 1..]
        .strip_suffix('}')
        .unwrap_or(&key[brace + 1..]);
    let labels = inner
        .split(',')
        .filter(|p| !p.is_empty())
        .map(|p| match p.split_once('=') {
            Some((k, v)) => (k, v),
            None => (p, ""),
        })
        .collect();
    (name, labels)
}

/// Maps a registry name onto the exposition character set
/// (`[a-zA-Z0-9_:]`): dots and other separators become underscores, a
/// leading digit is prefixed.
fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Number formatting for sample values: integers stay short, non-finite
/// values use the exposition spellings (`NaN`, `+Inf`, `-Inf`).
fn fmt_num(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x.is_infinite() {
        if x > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Renders one label set, with optional extra pairs appended (used for
/// histogram `quantile` series).
fn label_block(labels: &[(&str, &str)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().chain(extra.iter()).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", sanitize_name(k), escape_label(v));
    }
    out.push('}');
    out
}

/// Renders a snapshot in the plaintext exposition format (version
/// 0.0.4). Ordering follows the snapshot's (sorted) key order; a
/// `# TYPE` header is emitted once per distinct sample family.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(64 * snap.entries.len() + 16);
    let mut last_typed: Option<String> = None;
    for (key, value) in &snap.entries {
        let (raw_name, labels) = split_key(key);
        let name = sanitize_name(raw_name);
        let kind = match value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) | MetricValue::TimeGauge { .. } => "gauge",
            MetricValue::Histogram(_) => "summary",
        };
        if last_typed.as_deref() != Some(name.as_str()) {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            last_typed = Some(name.clone());
        }
        let lb = label_block(&labels, &[]);
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{name}{lb} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{name}{lb} {}", fmt_num(*v));
            }
            MetricValue::TimeGauge { current, mean, max } => {
                let _ = writeln!(out, "{name}{lb} {}", fmt_num(*current));
                let _ = writeln!(out, "{name}_mean{lb} {}", fmt_num(*mean));
                let _ = writeln!(out, "{name}_max{lb} {}", fmt_num(*max));
            }
            MetricValue::Histogram(h) => {
                for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                    let qlb = label_block(&labels, &[("quantile", q)]);
                    let _ = writeln!(out, "{name}{qlb} {}", fmt_num(v));
                }
                let _ = writeln!(out, "{name}_count{lb} {}", h.count);
                let _ = writeln!(out, "{name}_sum{lb} {}", fmt_num(h.mean * h.count as f64));
                let _ = writeln!(out, "{name}_max{lb} {}", fmt_num(h.max));
            }
        }
    }
    out
}

/// Renders a human-oriented text panel: counters, gauges and histogram
/// summaries grouped under `title`. Stateless — for live rates use a
/// [`Dashboard`].
pub fn render_dashboard(snap: &Snapshot, title: &str) -> String {
    Dashboard::new(title, Duration::from_secs(1)).render(snap)
}

/// A periodic text dashboard with per-second counter rates.
///
/// Owns the cadence ([`Dashboard::due`]) and the previous render's
/// counter values so each [`Dashboard::render`] can show both the
/// running total and the rate since the last panel.
pub struct Dashboard {
    title: String,
    interval: Duration,
    next: Option<Instant>,
    prev: Option<(Instant, Vec<(String, u64)>)>,
}

impl Dashboard {
    /// A dashboard rendering every `interval`.
    pub fn new(title: &str, interval: Duration) -> Self {
        Dashboard {
            title: title.to_string(),
            interval,
            next: None,
            prev: None,
        }
    }

    /// Adjusts the cadence (takes effect from the next due check).
    pub fn set_interval(&mut self, interval: Duration) {
        self.interval = interval;
    }

    /// True once per interval: the first call arms the timer, later
    /// calls fire when `now` passes the deadline.
    pub fn due(&mut self, now: Instant) -> bool {
        match self.next {
            None => {
                self.next = Some(now + self.interval);
                false
            }
            Some(at) if now >= at => {
                self.next = Some(now + self.interval);
                true
            }
            Some(_) => false,
        }
    }

    /// Renders the panel and records counter values for the next
    /// render's rate column.
    pub fn render(&mut self, snap: &Snapshot) -> String {
        let now = Instant::now();
        let elapsed = self
            .prev
            .as_ref()
            .map(|(t, _)| now.duration_since(*t).as_secs_f64());
        let width = snap
            .entries
            .iter()
            .map(|(k, _)| k.len())
            .max()
            .unwrap_or(0)
            .max(8);

        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histos = String::new();
        let mut seen: Vec<(String, u64)> = Vec::new();
        for (key, value) in &snap.entries {
            match value {
                MetricValue::Counter(v) => {
                    seen.push((key.clone(), *v));
                    let rate = match (&self.prev, elapsed) {
                        (Some((_, prev)), Some(dt)) if dt > 0.0 => {
                            let before = prev
                                .iter()
                                .find(|(k, _)| k == key)
                                .map(|(_, v)| *v)
                                .unwrap_or(0);
                            format!("  ({:.1}/s)", v.saturating_sub(before) as f64 / dt)
                        }
                        _ => String::new(),
                    };
                    let _ = writeln!(counters, "  {key:<width$} {v}{rate}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(gauges, "  {key:<width$} {}", fmt_num(*v));
                }
                MetricValue::TimeGauge { current, mean, max } => {
                    let _ = writeln!(
                        gauges,
                        "  {key:<width$} {} (mean {}, max {})",
                        fmt_num(*current),
                        fmt_num(*mean),
                        fmt_num(*max)
                    );
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(histos, "  {key:<width$} {}", h.brief());
                }
            }
        }
        self.prev = Some((now, seen));

        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        for (header, body) in [
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histos),
        ] {
            if !body.is_empty() {
                let _ = writeln!(out, "{header}:");
                out.push_str(&body);
            }
        }
        if out.lines().count() == 1 {
            let _ = writeln!(out, "(no metrics registered)");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::HistogramSummary;

    fn sample() -> Snapshot {
        Snapshot {
            entries: vec![
                ("rtnet.served".into(), MetricValue::Counter(3)),
                (
                    "rtnet.serve_us".into(),
                    MetricValue::Histogram(HistogramSummary {
                        count: 4,
                        mean: 2.0,
                        p50: 2.0,
                        p95: 4.0,
                        p99: 4.0,
                        max: 4.5,
                    }),
                ),
                ("vcore.load".into(), MetricValue::Gauge(0.5)),
            ],
        }
    }

    #[test]
    fn prometheus_names_are_sanitized_and_typed() {
        let text = render_prometheus(&sample());
        assert!(text.contains("# TYPE rtnet_served counter"));
        assert!(text.contains("rtnet_served 3"));
        assert!(text.contains("rtnet_serve_us{quantile=\"0.99\"} 4"));
        assert!(text.contains("rtnet_serve_us_count 4"));
        assert!(text.contains("vcore_load 0.5"));
    }

    #[test]
    fn labels_are_escaped() {
        let snap = Snapshot {
            entries: vec![("c{path=a\"b\\c}".into(), MetricValue::Counter(1))],
        };
        let text = render_prometheus(&snap);
        assert!(text.contains("c{path=\"a\\\"b\\\\c\"} 1"), "got: {text}");
    }

    #[test]
    fn dashboard_shows_rates_on_second_render() {
        let mut dash = Dashboard::new("t", Duration::from_millis(1));
        let first = dash.render(&sample());
        assert!(first.starts_with("== t =="));
        assert!(!first.contains("/s)"), "no rate before a baseline");
        std::thread::sleep(Duration::from_millis(5));
        let second = dash.render(&sample());
        assert!(second.contains("/s)"), "got: {second}");
    }

    #[test]
    fn due_fires_once_per_interval() {
        let mut dash = Dashboard::new("t", Duration::from_millis(10));
        let t0 = Instant::now();
        assert!(!dash.due(t0), "first call arms");
        assert!(!dash.due(t0 + Duration::from_millis(5)));
        assert!(dash.due(t0 + Duration::from_millis(11)));
        assert!(!dash.due(t0 + Duration::from_millis(12)));
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let text = render_dashboard(&Snapshot::default(), "empty");
        assert!(text.contains("(no metrics registered)"));
    }
}
