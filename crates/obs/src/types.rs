//! Plain-data types shared by the real recorder and the no-op build.

use std::fmt::Write as _;

/// Quantile summary of one histogram — the single snapshot shape every
/// consumer (bench binaries, EXPERIMENTS.md tables, JSON export) uses.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// Median (upper bucket edge for bucketed histograms).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest recorded sample.
    pub max: f64,
}

impl HistogramSummary {
    /// One-line human form: `n=5 mean=2.0 p50=2 p95=4 p99=4 max=4.0`.
    pub fn brief(&self) -> String {
        format!(
            "n={} mean={} p50={} p95={} p99={} max={}",
            self.count,
            fmt_f64(self.mean),
            fmt_f64(self.p50),
            fmt_f64(self.p95),
            fmt_f64(self.p99),
            fmt_f64(self.max)
        )
    }

    /// JSON object form.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
            self.count,
            fmt_f64(self.mean),
            fmt_f64(self.p50),
            fmt_f64(self.p95),
            fmt_f64(self.p99),
            fmt_f64(self.max)
        )
    }
}

/// What a journal entry records. Spans/points carry free-form strings
/// (they feed `desim::Timeline`); the rest are typed middleware events.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A closed interval on some actor's lane (download/exec/upload…).
    Span {
        /// Lane owner, e.g. `node-03` or `server`.
        actor: String,
        /// Span class, e.g. `exec`.
        kind: String,
        /// Free-form payload, e.g. the result id.
        detail: String,
        /// Interval end, microseconds (start is the event's `t_us`).
        end_us: u64,
    },
    /// An instantaneous mark on some actor's lane.
    Point {
        /// Lane owner.
        actor: String,
        /// Point class, e.g. `report`.
        kind: String,
        /// Free-form payload.
        detail: String,
    },
    /// The scheduler answered one client RPC.
    RpcServed {
        /// Client host id.
        client: u32,
        /// Results granted in the reply.
        granted: u32,
        /// True when the client asked for work and got none.
        empty: bool,
    },
    /// A work unit changed lifecycle state (validated / failed / …).
    WuTransition {
        /// Work-unit id rendered as text.
        wu: String,
        /// Target state, e.g. `validated`.
        to: String,
    },
    /// A network flow was admitted.
    FlowStart {
        /// Flow id.
        id: u64,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A network flow drained its last byte.
    FlowComplete {
        /// Flow id.
        id: u64,
        /// Payload size in bytes.
        bytes: u64,
        /// Transfer duration in microseconds.
        dur_us: u64,
    },
    /// A client armed exponential backoff after an empty reply.
    BackoffArmed {
        /// Client host id.
        client: u32,
        /// Delay until the next RPC, microseconds.
        delay_us: u64,
    },
    /// A peer held the file but its serving window had expired.
    ServingExpiry {
        /// Serving client host id.
        client: u32,
        /// File name that was no longer served.
        file: String,
    },
    /// A peer fetch gave up and fell back to the project server.
    PeerFallback {
        /// Fetching client host id.
        client: u32,
        /// File being fetched.
        file: String,
    },
    /// The durability layer wrote a full-state snapshot to the WAL.
    SnapshotTaken {
        /// Change records in the log when the snapshot was cut.
        records: u64,
        /// Encoded snapshot size, bytes.
        bytes: u64,
    },
    /// A server resumed from a WAL image (snapshot + replay tail).
    Recovered {
        /// Change records replayed on top of the snapshot.
        replayed: u64,
        /// Whether a committed snapshot seeded the recovery.
        from_snapshot: bool,
    },
}

/// One journal entry: a timestamp plus a typed payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Simulation (or wall) time of the event, microseconds.
    pub t_us: u64,
    /// Typed payload.
    pub kind: EventKind,
}

impl Event {
    /// One JSON object (a single JSON-lines record).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"t_us\":{}", self.t_us);
        match &self.kind {
            EventKind::Span {
                actor,
                kind,
                detail,
                end_us,
            } => {
                let _ = write!(
                    s,
                    ",\"type\":\"span\",\"actor\":\"{}\",\"kind\":\"{}\",\"detail\":\"{}\",\"end_us\":{}",
                    json_escape(actor),
                    json_escape(kind),
                    json_escape(detail),
                    end_us
                );
            }
            EventKind::Point {
                actor,
                kind,
                detail,
            } => {
                let _ = write!(
                    s,
                    ",\"type\":\"point\",\"actor\":\"{}\",\"kind\":\"{}\",\"detail\":\"{}\"",
                    json_escape(actor),
                    json_escape(kind),
                    json_escape(detail)
                );
            }
            EventKind::RpcServed {
                client,
                granted,
                empty,
            } => {
                let _ = write!(
                    s,
                    ",\"type\":\"rpc_served\",\"client\":{client},\"granted\":{granted},\"empty\":{empty}"
                );
            }
            EventKind::WuTransition { wu, to } => {
                let _ = write!(
                    s,
                    ",\"type\":\"wu_transition\",\"wu\":\"{}\",\"to\":\"{}\"",
                    json_escape(wu),
                    json_escape(to)
                );
            }
            EventKind::FlowStart { id, bytes } => {
                let _ = write!(s, ",\"type\":\"flow_start\",\"id\":{id},\"bytes\":{bytes}");
            }
            EventKind::FlowComplete { id, bytes, dur_us } => {
                let _ = write!(
                    s,
                    ",\"type\":\"flow_complete\",\"id\":{id},\"bytes\":{bytes},\"dur_us\":{dur_us}"
                );
            }
            EventKind::BackoffArmed { client, delay_us } => {
                let _ = write!(
                    s,
                    ",\"type\":\"backoff_armed\",\"client\":{client},\"delay_us\":{delay_us}"
                );
            }
            EventKind::ServingExpiry { client, file } => {
                let _ = write!(
                    s,
                    ",\"type\":\"serving_expiry\",\"client\":{client},\"file\":\"{}\"",
                    json_escape(file)
                );
            }
            EventKind::PeerFallback { client, file } => {
                let _ = write!(
                    s,
                    ",\"type\":\"peer_fallback\",\"client\":{client},\"file\":\"{}\"",
                    json_escape(file)
                );
            }
            EventKind::SnapshotTaken { records, bytes } => {
                let _ = write!(
                    s,
                    ",\"type\":\"snapshot_taken\",\"records\":{records},\"bytes\":{bytes}"
                );
            }
            EventKind::Recovered {
                replayed,
                from_snapshot,
            } => {
                let _ = write!(
                    s,
                    ",\"type\":\"recovered\",\"replayed\":{replayed},\"from_snapshot\":{from_snapshot}"
                );
            }
        }
        s.push('}');
        s
    }
}

/// One metric's value at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Last set value.
    Gauge(f64),
    /// Time-weighted gauge: last value, time-weighted mean, peak.
    TimeGauge {
        /// Last value set.
        current: f64,
        /// Time-weighted mean over the observed interval.
        mean: f64,
        /// Largest value ever set.
        max: f64,
    },
    /// Histogram quantile summary.
    Histogram(HistogramSummary),
}

impl MetricValue {
    fn to_json(&self) -> String {
        match self {
            MetricValue::Counter(v) => v.to_string(),
            MetricValue::Gauge(v) => fmt_f64(*v),
            MetricValue::TimeGauge { current, mean, max } => format!(
                "{{\"current\":{},\"mean\":{},\"max\":{}}}",
                fmt_f64(*current),
                fmt_f64(*mean),
                fmt_f64(*max)
            ),
            MetricValue::Histogram(h) => h.to_json(),
        }
    }
}

/// A point-in-time dump of every registered metric, sorted by name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(full metric key, value)` pairs in key order.
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Look up one metric by its full key.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Counter value by key; 0 when absent or not a counter.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram quantile summary by key; an empty summary when absent
    /// or not a histogram. This is the one quantile API consumers use —
    /// the bench binaries read p50/p95/p99 from here instead of
    /// carrying their own percentile plumbing.
    pub fn histogram(&self, name: &str) -> HistogramSummary {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => *h,
            _ => HistogramSummary::default(),
        }
    }

    /// The snapshot as one JSON object keyed by metric name.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(32 + 48 * self.entries.len());
        s.push('{');
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", json_escape(k), v.to_json());
        }
        s.push('}');
        s
    }
}

/// Escape a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// JSON-safe float formatting: finite values round-trip, non-finite
/// become null (JSON has no NaN/Inf).
pub(crate) fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        // Keep integers short ("5" not "5.0") for stable, readable dumps.
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_shapes() {
        let e = Event {
            t_us: 5,
            kind: EventKind::Point {
                actor: "a\"b".into(),
                kind: "k".into(),
                detail: "".into(),
            },
        };
        assert_eq!(
            e.to_json(),
            "{\"t_us\":5,\"type\":\"point\",\"actor\":\"a\\\"b\",\"kind\":\"k\",\"detail\":\"\"}"
        );
        let f = Event {
            t_us: 9,
            kind: EventKind::FlowComplete {
                id: 3,
                bytes: 10,
                dur_us: 4,
            },
        };
        assert!(f.to_json().contains("\"type\":\"flow_complete\""));
    }

    #[test]
    fn float_formatting_is_json_safe() {
        assert_eq!(fmt_f64(5.0), "5");
        assert_eq!(fmt_f64(2.5), "2.5");
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn snapshot_json_and_lookup() {
        let snap = Snapshot {
            entries: vec![
                ("a".into(), MetricValue::Counter(3)),
                ("b".into(), MetricValue::Gauge(1.5)),
            ],
        };
        assert_eq!(snap.counter("a"), 3);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.to_json(), "{\"a\":3,\"b\":1.5}");
    }
}
