//! The no-op recorder, selected when the `record` feature is off.
//!
//! Every handle is a zero-sized struct with empty method bodies, so
//! downstream instrumentation compiles to nothing: counters vanish,
//! `record_with` never runs its payload closure, scope guards never
//! read the clock, and snapshots/journals come back empty.

use crate::types::{Event, EventKind, HistogramSummary, Snapshot};
use std::fmt::Display;

/// No-op counter.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counter;

impl Counter {
    /// No-op.
    #[inline(always)]
    pub fn inc(&self) {}
    /// No-op.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}
    /// Always 0.
    pub fn get(&self) -> u64 {
        0
    }
}

/// No-op gauge.
#[derive(Clone, Copy, Debug, Default)]
pub struct Gauge;

impl Gauge {
    /// No-op.
    #[inline(always)]
    pub fn set(&self, _v: f64) {}
    /// Always 0.
    pub fn get(&self) -> f64 {
        0.0
    }
}

/// No-op time-weighted gauge.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimeGauge;

impl TimeGauge {
    /// No-op.
    #[inline(always)]
    pub fn set(&self, _t_us: u64, _v: f64) {}
    /// Always 0.
    pub fn current(&self) -> f64 {
        0.0
    }
}

/// No-op histogram.
#[derive(Clone, Copy, Debug, Default)]
pub struct Histo;

impl Histo {
    /// No-op.
    #[inline(always)]
    pub fn record(&self, _v: f64) {}
    /// Always 0.
    pub fn count(&self) -> u64 {
        0
    }
    /// Always the empty summary.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary::default()
    }
}

/// No-op registry: hands out zero-sized handles, snapshots are empty.
#[derive(Clone, Copy, Debug, Default)]
pub struct Registry;

impl Registry {
    /// Fresh no-op registry.
    pub fn new() -> Self {
        Registry
    }
    /// Zero-sized handle.
    pub fn counter(&self, _name: &str) -> Counter {
        Counter
    }
    /// Zero-sized handle.
    pub fn counter_labeled(&self, _name: &str, _labels: &[(&str, &str)]) -> Counter {
        Counter
    }
    /// Zero-sized handle.
    pub fn gauge(&self, _name: &str) -> Gauge {
        Gauge
    }
    /// Zero-sized handle.
    pub fn time_gauge(&self, _name: &str) -> TimeGauge {
        TimeGauge
    }
    /// Zero-sized handle.
    pub fn histogram(&self, _name: &str) -> Histo {
        Histo
    }
    /// Always empty.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::default()
    }
}

/// No-op journal: never records, always empty.
#[derive(Clone, Copy, Debug, Default)]
pub struct Journal;

impl Journal {
    /// Fresh no-op journal.
    pub fn new() -> Self {
        Journal
    }
    /// Capacity is ignored.
    pub fn with_capacity(_cap: usize) -> Self {
        Journal
    }
    /// No-op.
    pub fn set_enabled(&self, _on: bool) {}
    /// Always false.
    pub fn is_enabled(&self) -> bool {
        false
    }
    /// Never runs `f`.
    #[inline(always)]
    pub fn record_with(&self, _t_us: u64, _f: impl FnOnce() -> EventKind) {}
    /// No-op.
    #[inline(always)]
    pub fn span(
        &self,
        _actor: impl Display,
        _kind: impl Display,
        _detail: impl Display,
        _start_us: u64,
        _end_us: u64,
    ) {
    }
    /// No-op.
    #[inline(always)]
    pub fn point(
        &self,
        _actor: impl Display,
        _kind: impl Display,
        _detail: impl Display,
        _t_us: u64,
    ) {
    }
    /// Always empty.
    pub fn events(&self) -> Vec<Event> {
        Vec::new()
    }
    /// Always 0.
    pub fn len(&self) -> usize {
        0
    }
    /// Always true.
    pub fn is_empty(&self) -> bool {
        true
    }
    /// Always 0.
    pub fn dropped(&self) -> u64 {
        0
    }
    /// Always empty.
    pub fn to_jsonl(&self) -> String {
        String::new()
    }
}

/// No-op profiling switch.
#[derive(Clone, Copy, Debug, Default)]
pub struct Prof;

impl Prof {
    /// No-op.
    pub fn set_enabled(&self, _on: bool) {}
    /// Always false.
    pub fn is_enabled(&self) -> bool {
        false
    }
    /// Zero-sized scope.
    pub fn scope(&self, _registry: &Registry, _name: &str) -> Scope {
        Scope
    }
}

/// No-op profiling scope.
#[derive(Clone, Copy, Debug, Default)]
pub struct Scope;

impl Scope {
    /// Inert guard; never reads the clock.
    #[inline(always)]
    pub fn enter(&self) -> ScopeGuard<'_> {
        ScopeGuard(std::marker::PhantomData)
    }
}

/// Inert guard produced by [`Scope::enter`].
pub struct ScopeGuard<'a>(std::marker::PhantomData<&'a ()>);
