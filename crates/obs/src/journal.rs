//! The structured event journal (record build): a bounded ring of
//! typed, time-stamped events with JSON-lines export.

use crate::types::{Event, EventKind};
use std::collections::VecDeque;
use std::fmt::Display;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const DEFAULT_CAPACITY: usize = 65_536;

#[derive(Debug)]
struct Ring {
    buf: VecDeque<Event>,
    cap: usize,
    dropped: u64,
}

#[derive(Debug)]
struct Inner {
    enabled: AtomicBool,
    ring: Mutex<Ring>,
}

/// The event journal. Cloning shares the ring; `set_enabled(false)`
/// reduces every append to one relaxed atomic load.
#[derive(Clone, Debug)]
pub struct Journal(Arc<Inner>);

impl Default for Journal {
    fn default() -> Self {
        Journal::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Journal {
    /// An enabled journal with the default ring capacity (64 Ki events).
    pub fn new() -> Self {
        Journal::default()
    }

    /// An enabled journal keeping at most `cap` events (older events
    /// are dropped and counted).
    pub fn with_capacity(cap: usize) -> Self {
        Journal(Arc::new(Inner {
            enabled: AtomicBool::new(true),
            ring: Mutex::new(Ring {
                buf: VecDeque::with_capacity(cap.min(1024)),
                cap: cap.max(1),
                dropped: 0,
            }),
        }))
    }

    /// Turn recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.0.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether appends are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.enabled.load(Ordering::Relaxed)
    }

    /// Append one event, building the payload only when enabled — the
    /// hot-path form: a disabled journal never runs `f`.
    #[inline]
    pub fn record_with(&self, t_us: u64, f: impl FnOnce() -> EventKind) {
        if !self.is_enabled() {
            return;
        }
        let ev = Event { t_us, kind: f() };
        let mut ring = self.0.ring.lock().unwrap();
        if ring.buf.len() >= ring.cap {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(ev);
    }

    /// Record a closed interval on an actor's lane.
    pub fn span(
        &self,
        actor: impl Display,
        kind: impl Display,
        detail: impl Display,
        start_us: u64,
        end_us: u64,
    ) {
        self.record_with(start_us, || EventKind::Span {
            actor: actor.to_string(),
            kind: kind.to_string(),
            detail: detail.to_string(),
            end_us,
        });
    }

    /// Record an instantaneous mark on an actor's lane.
    pub fn point(&self, actor: impl Display, kind: impl Display, detail: impl Display, t_us: u64) {
        self.record_with(t_us, || EventKind::Point {
            actor: actor.to_string(),
            kind: kind.to_string(),
            detail: detail.to_string(),
        });
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.0.ring.lock().unwrap().buf.iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.0.ring.lock().unwrap().buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the ring bound since creation.
    pub fn dropped(&self) -> u64 {
        self.0.ring.lock().unwrap().dropped
    }

    /// JSON-lines export: one JSON object per retained event.
    pub fn to_jsonl(&self) -> String {
        let ring = self.0.ring.lock().unwrap();
        let mut out = String::with_capacity(96 * ring.buf.len());
        for ev in &ring.buf {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_journal_skips_payload_construction() {
        let j = Journal::new();
        j.set_enabled(false);
        let mut built = false;
        j.record_with(1, || {
            built = true;
            EventKind::FlowStart { id: 1, bytes: 1 }
        });
        assert!(!built);
        assert!(j.is_empty());
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let j = Journal::new();
        j.span("n", "exec", "r1", 10, 20);
        j.record_with(30, || EventKind::BackoffArmed {
            client: 2,
            delay_us: 600,
        });
        let out = j.to_jsonl();
        assert_eq!(out.lines().count(), 2);
        assert!(out.contains("\"type\":\"span\""));
        assert!(out.contains("\"type\":\"backoff_armed\""));
    }
}
