//! Criterion benchmark `netsim/flow-churn`: the incremental flow engine
//! against the scan-everything reference on the shuffle-churn workload
//! (many short overlapping flows with relays, caps and background
//! traffic — see `vmr_bench::churn`).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use vmr_bench::churn::{churn_script, churn_topology, run_churn, ChurnSpec};
use vmr_netsim::{NaiveNetwork, Network};

fn bench_flow_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim/flow-churn");
    g.sample_size(10);

    // The paper's testbed scale: 40 hosts, ~400 concurrent flows.
    let small = ChurnSpec {
        hosts: 40,
        fetches_per_host: 10,
        waves: 1,
        seed: 0x51AB,
    };
    let small_script = churn_script(&small);
    g.throughput(Throughput::Elements(small_script.len() as u64));
    g.bench_function("40-hosts-400-flows/incremental", |b| {
        b.iter(|| black_box(run_churn::<Network>(churn_topology(&small), &small_script)))
    });
    g.bench_function("40-hosts-400-flows/reference", |b| {
        b.iter(|| {
            black_box(run_churn::<NaiveNetwork>(
                churn_topology(&small),
                &small_script,
            ))
        })
    });

    // Volunteer-cloud scale; incremental engine only (the reference is
    // quadratic in the flow population and would run for minutes).
    let large = ChurnSpec {
        hosts: 1000,
        fetches_per_host: 3,
        waves: 1,
        seed: 0x51AB,
    };
    let large_script = churn_script(&large);
    g.throughput(Throughput::Elements(large_script.len() as u64));
    g.bench_function("1000-hosts/incremental", |b| {
        b.iter(|| black_box(run_churn::<Network>(churn_topology(&large), &large_script)))
    });

    g.finish();
}

criterion_group!(benches, bench_flow_churn);
criterion_main!(benches);
