//! WAL overhead: the same experiment with durability off, WAL-only,
//! and WAL + snapshots — the cost of journaling every server mutation.
//!
//! Also times recovery (materializing all server state from the final
//! log image), the other half of the durability trade-off.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use vmr_core::{run_experiment, ExperimentConfig, MrMode, RecoveredServerState};
use vmr_durable::DurabilityPlan;

fn small() -> ExperimentConfig {
    let mut c = ExperimentConfig::table1(6, 4, 2, MrMode::InterClient);
    c.input_bytes = 64 << 20;
    c
}

fn bench_wal_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("durable/wal_overhead");
    g.sample_size(10);
    let plans = [
        ("off", DurabilityPlan::disabled()),
        ("wal-only", DurabilityPlan::new(0.0)),
        ("wal+snap60s", DurabilityPlan::new(60.0)),
        (
            "wal+snap60s-inc4",
            DurabilityPlan::new(60.0).with_incremental(4),
        ),
        (
            "wal+snap60s-sharded",
            DurabilityPlan::new(60.0)
                .with_incremental(4)
                .with_sharding(),
        ),
    ];
    for (name, plan) in plans {
        let mut cfg = small();
        cfg.durable = plan;
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                black_box(
                    run_experiment(cfg)
                        .expect("valid experiment config")
                        .finished_at,
                )
            })
        });
    }
    g.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("durable/recovery");
    g.sample_size(10);
    for (name, plan) in [
        ("wal-only", DurabilityPlan::new(0.0)),
        ("wal+snap60s", DurabilityPlan::new(60.0)),
        (
            "wal+snap60s-inc4",
            DurabilityPlan::new(60.0).with_incremental(4),
        ),
        (
            "wal+snap60s-sharded",
            DurabilityPlan::new(60.0)
                .with_incremental(4)
                .with_sharding(),
        ),
    ] {
        let mut cfg = small();
        cfg.durable = plan;
        let wal = run_experiment(&cfg)
            .expect("valid experiment config")
            .wal
            .unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &wal, |b, wal| {
            b.iter(|| {
                black_box(
                    RecoveredServerState::from_log(wal)
                        .unwrap()
                        .committed_records,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_wal_overhead, bench_recovery);
criterion_main!(benches);
