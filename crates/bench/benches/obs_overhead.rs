//! Criterion benchmark `obs/overhead`: the same flow-churn workload
//! with observability detached versus recording into a live registry
//! (counters + journal), and recording with profiling scopes armed.
//!
//! This is the number quoted in EXPERIMENTS.md: with the default
//! `record` feature the instrumented hot path must stay within ~2% of
//! the detached run, and a `--no-default-features` build compiles the
//! recorder out entirely (0% by construction).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use vmr_bench::churn::{churn_script, churn_topology, run_churn, run_churn_with_obs, ChurnSpec};
use vmr_netsim::Network;

fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs/overhead");
    g.sample_size(20);

    // Paper testbed scale: enough churn for the instrumented paths
    // (flow start/complete, realloc waves) to dominate the runtime.
    let spec = ChurnSpec {
        hosts: 40,
        fetches_per_host: 10,
        waves: 1,
        seed: 0x0B5E,
    };
    let script = churn_script(&spec);
    g.throughput(Throughput::Elements(script.len() as u64));

    g.bench_function("flow-churn/detached", |b| {
        b.iter(|| black_box(run_churn::<Network>(churn_topology(&spec), &script)))
    });

    g.bench_function("flow-churn/recording", |b| {
        b.iter(|| {
            let obs = vmr_obs::Obs::new();
            black_box(run_churn_with_obs::<Network>(
                churn_topology(&spec),
                &script,
                &obs,
            ))
        })
    });

    g.bench_function("flow-churn/recording+profiling", |b| {
        b.iter(|| {
            let obs = vmr_obs::Obs::new();
            obs.set_profiling(true);
            black_box(run_churn_with_obs::<Network>(
                churn_topology(&spec),
                &script,
                &obs,
            ))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
