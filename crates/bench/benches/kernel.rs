//! Micro-benchmarks of the substrate hot paths: event queue, fair-share
//! allocator, partitioner, map task, SHA-256, corpus generation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vmr_desim::{EventQueue, SimTime, Simulation};
use vmr_mapreduce::apps::WordCount;
use vmr_mapreduce::{run_map_task, sha256, CorpusGen, CorpusSpec, HashPartitioner};
use vmr_netsim::{allocate, Direction, FlowDemand, HostId, HostLink, LinkRef, Priority, Topology};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("desim/event-queue");
    for n in [1_000usize, 10_000, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("schedule+pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.schedule(SimTime::from_micros(((i * 2_654_435_761) % n) as u64), i);
                }
                let mut out = 0usize;
                while let Some((_, _, p)) = q.pop() {
                    out = out.wrapping_add(p);
                }
                black_box(out)
            })
        });
    }
    g.finish();
}

fn bench_sim_loop(c: &mut Criterion) {
    c.bench_function("desim/self-perpetuating-run-100k", |b| {
        b.iter(|| {
            let mut sim: Simulation<u32> = Simulation::new(1);
            sim.schedule_at(SimTime::ZERO, 0);
            let mut world = 0u64;
            sim.run(&mut world, 100_000, |sim, world, ev| {
                *world += ev.payload as u64;
                sim.schedule_in(vmr_desim::SimDuration::from_micros(10), ev.payload + 1);
            });
            black_box(world)
        })
    });
}

fn bench_allocator(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim/max-min-allocate");
    for n_flows in [10usize, 100, 400] {
        let mut topo = Topology::new();
        for _ in 0..32 {
            topo.add_host(HostLink::symmetric_mbit(100.0, 0.001));
        }
        let flows: Vec<FlowDemand<usize>> = (0..n_flows)
            .map(|i| FlowDemand {
                key: i,
                links: vec![
                    LinkRef {
                        host: HostId((i % 32) as u32),
                        dir: Direction::Up,
                    },
                    LinkRef {
                        host: HostId(((i * 7 + 1) % 32) as u32),
                        dir: Direction::Down,
                    },
                ],
                priority: if i % 4 == 0 {
                    Priority::Background
                } else {
                    Priority::Foreground
                },
                rate_cap: None,
            })
            .collect();
        g.throughput(Throughput::Elements(n_flows as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n_flows), &flows, |b, flows| {
            b.iter(|| black_box(allocate(&topo, flows)))
        });
    }
    g.finish();
}

fn bench_partitioner(c: &mut Criterion) {
    let part = HashPartitioner::new(16);
    let keys: Vec<String> = (0..10_000).map(|i| format!("word-{i}")).collect();
    let mut g = c.benchmark_group("mapreduce/partitioner");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("fnv-mod-16/10k-keys", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for k in &keys {
                acc += part.partition_str(k);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_map_task(c: &mut Criterion) {
    let mut gen = CorpusGen::new(&CorpusSpec::default());
    let chunk = gen.generate(1 << 20);
    let part = HashPartitioner::new(8);
    let mut g = c.benchmark_group("mapreduce/map-task");
    g.throughput(Throughput::Bytes(chunk.len() as u64));
    g.sample_size(20);
    g.bench_function("wordcount-1MiB-8parts", |b| {
        b.iter(|| {
            let mo = run_map_task(&WordCount, &chunk, &part, |k| k.as_bytes().to_vec());
            black_box(mo.partitions.len())
        })
    });
    g.finish();
}

fn bench_sha256(c: &mut Criterion) {
    let data = vec![0xabu8; 1 << 20];
    let mut g = c.benchmark_group("hashes/sha256");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("1MiB", |b| b.iter(|| black_box(sha256(&data))));
    g.finish();
}

fn bench_corpus(c: &mut Criterion) {
    let mut g = c.benchmark_group("mapreduce/corpus-gen");
    g.throughput(Throughput::Bytes(1 << 20));
    g.sample_size(20);
    g.bench_function("zipf-1MiB", |b| {
        b.iter(|| {
            let mut gen = CorpusGen::new(&CorpusSpec::default());
            black_box(gen.generate(1 << 20).len())
        })
    });
    g.finish();
}

fn bench_encode(c: &mut Criterion) {
    let mut gen = CorpusGen::new(&CorpusSpec::default());
    let chunk = gen.generate(256 << 10);
    let part = HashPartitioner::new(4);
    let mo = run_map_task(&WordCount, &chunk, &part, |k| k.as_bytes().to_vec());
    c.bench_function("mapreduce/encode-partition", |b| {
        b.iter(|| black_box(mo.encode_partition(&WordCount, 0).len()))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_sim_loop,
    bench_allocator,
    bench_partitioner,
    bench_map_task,
    bench_sha256,
    bench_corpus,
    bench_encode,
);
criterion_main!(benches);
