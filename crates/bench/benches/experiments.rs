//! Macro-benchmarks: whole-experiment simulation cost, plus `cargo
//! bench` entry points that *also* regenerate the paper's Table I and
//! Fig. 4 headline numbers (printed once per run, before timing).
//!
//! The dedicated regeneration binaries (`table1`, `fig4`, the `A*`
//! ablations) print the full artifacts; these benches make `cargo bench
//! --workspace` alone exercise every experiment path end-to-end.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use vmr_bench::{calibrated_sizing, row_config, table1_rows};
use vmr_core::{run_experiment, ExperimentConfig, MrMode};
use vmr_mapreduce::apps::WordCount;
use vmr_mapreduce::JobSpec;
use vmr_rtnet::{run_cluster, ClusterConfig};

/// Prints the Table I reproduction once, then benches one row's
/// simulation wall-cost (the whole table is 9 such runs).
fn bench_table1(c: &mut Criterion) {
    let sizing = calibrated_sizing();
    println!("\n=== Table I reproduction (headline; full table: --bin table1) ===");
    for row in table1_rows() {
        let out = run_experiment(&row_config(&row, sizing)).expect("valid experiment config");
        let r = &out.reports[0];
        println!(
            "{:>2} nodes {:>2} maps {:>2} red [{}]: map {:>4.0}s reduce {:>4.0}s total {:>5.0}s (paper {:>4.0}/{:>4.0}/{:>5.0})",
            row.nodes, row.n_maps, row.n_reduces, row.mode,
            r.map_s, r.reduce_s, r.total_s,
            row.paper_map.0, row.paper_reduce.0, row.paper_total.0,
        );
    }
    let mut g = c.benchmark_group("experiments/table1");
    g.sample_size(10);
    let rows = table1_rows();
    for row in [&rows[0], &rows[8]] {
        let cfg = row_config(row, sizing);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!(
                "{}n-{}m-{}r-{}",
                row.nodes, row.n_maps, row.n_reduces, row.mode
            )),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    black_box(
                        run_experiment(cfg)
                            .expect("valid experiment config")
                            .finished_at,
                    )
                })
            },
        );
    }
    g.finish();
}

/// Fig. 4 headline + simulation cost with full timeline recording.
fn bench_fig4(c: &mut Criterion) {
    let sizing = calibrated_sizing();
    let mut cfg = ExperimentConfig::table1(15, 15, 3, MrMode::ServerRelay);
    cfg.sizing = sizing;
    cfg.record_timeline = true;
    cfg.seed = 0xF164;
    let out = run_experiment(&cfg).expect("valid experiment config");
    let r = &out.reports[0];
    println!(
        "\n=== Fig. 4 reproduction: map {:.0}s (paper 747[396]), reduce start gap visible; full series: --bin fig4 ===",
        r.map_s
    );
    let mut g = c.benchmark_group("experiments/fig4");
    g.sample_size(10);
    g.bench_function("15n-15m-3r-timeline", |b| {
        b.iter(|| {
            black_box(
                run_experiment(&cfg)
                    .expect("valid experiment config")
                    .timeline
                    .spans()
                    .len(),
            )
        })
    });
    g.finish();
}

/// Real TCP cluster end-to-end cost (actual sockets + threads).
fn bench_real_cluster(c: &mut Criterion) {
    let mut gen = vmr_mapreduce::CorpusGen::new(&vmr_mapreduce::CorpusSpec::default());
    let data = Arc::new(gen.generate(512 << 10));
    let mut g = c.benchmark_group("rtnet/local-cluster");
    g.sample_size(10);
    g.bench_function("wordcount-512KiB-4w-4m-2r", |b| {
        b.iter(|| {
            let cfg = ClusterConfig::new(4, JobSpec::new("wc", 4, 2));
            let report = run_cluster(Arc::new(WordCount), data.clone(), &cfg);
            black_box(report.output.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table1, bench_fig4, bench_real_cluster);
criterion_main!(benches);
