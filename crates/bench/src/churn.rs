//! Flow-churn workload for the netsim engine benchmarks.
//!
//! Models the hot phase the incremental flow engine was built for: a
//! MapReduce shuffle where every reducer fetches partitions from many
//! mappers at once — hundreds to thousands of short overlapping flows,
//! with relay paths, rate caps and background (TCP-Nice) traffic mixed
//! in. The same deterministic script drives both [`Network`] and
//! [`NaiveNetwork`] so their throughput can be compared honestly.

use vmr_core::PopulationSpec;
use vmr_desim::{SimDuration, SimTime};
use vmr_netsim::{
    AggregateNetwork, Completion, FlowId, FlowSpec, HostId, HostLink, NaiveNetwork, Network,
    Priority, Topology,
};

/// The engine surface the churn driver needs; implemented by the
/// incremental engine, the scan-everything reference engine and the
/// internet-scale aggregate engine.
pub trait FlowEngine {
    /// Wraps a topology (metrics go to a detached sink).
    fn build(topo: Topology) -> Self
    where
        Self: Sized,
    {
        Self::build_with_obs(topo, &vmr_obs::Obs::detached())
    }
    /// Wraps a topology, recording flow counters into `obs`.
    fn build_with_obs(topo: Topology, obs: &vmr_obs::Obs) -> Self;
    /// Starts a transfer at `now`.
    fn start_flow(&mut self, now: SimTime, spec: FlowSpec) -> FlowId;
    /// Advances to `now`, returning completions.
    fn advance(&mut self, now: SimTime) -> Vec<Completion>;
    /// Next self-event instant, if any.
    fn next_event_time(&self) -> Option<SimTime>;
    /// In-flight flow count.
    fn active_flows(&self) -> usize;
    /// Total payload bytes delivered.
    fn bytes_delivered(&self) -> f64;
    /// Peak simultaneously-coalescing flow-class pools (0 for the exact
    /// engines, which never aggregate).
    fn peak_aggregates(&self) -> usize {
        0
    }
    /// Whether the engine left its exact regime during the run (always
    /// false for the exact engines).
    fn scale_regime(&self) -> bool {
        false
    }
}

macro_rules! impl_flow_engine {
    ($t:ty) => {
        impl FlowEngine for $t {
            fn build_with_obs(topo: Topology, obs: &vmr_obs::Obs) -> Self {
                <$t>::with_obs(topo, obs)
            }
            fn start_flow(&mut self, now: SimTime, spec: FlowSpec) -> FlowId {
                <$t>::start_flow(self, now, spec)
            }
            fn advance(&mut self, now: SimTime) -> Vec<Completion> {
                <$t>::advance(self, now)
            }
            fn next_event_time(&self) -> Option<SimTime> {
                <$t>::next_event_time(self)
            }
            fn active_flows(&self) -> usize {
                <$t>::active_flows(self)
            }
            fn bytes_delivered(&self) -> f64 {
                <$t>::bytes_delivered(self)
            }
        }
    };
}

impl_flow_engine!(Network);
impl_flow_engine!(NaiveNetwork);

// The aggregate engine starts in its (bit-identical) exact regime under
// `FlowEngine::build*`; callers wanting a scale policy construct it with
// `AggregateNetwork::with_policy` and use [`run_churn_engine`].
impl FlowEngine for AggregateNetwork {
    fn build_with_obs(topo: Topology, obs: &vmr_obs::Obs) -> Self {
        AggregateNetwork::with_obs(topo, obs)
    }
    fn start_flow(&mut self, now: SimTime, spec: FlowSpec) -> FlowId {
        AggregateNetwork::start_flow(self, now, spec)
    }
    fn advance(&mut self, now: SimTime) -> Vec<Completion> {
        AggregateNetwork::advance(self, now)
    }
    fn next_event_time(&self) -> Option<SimTime> {
        AggregateNetwork::next_event_time(self)
    }
    fn active_flows(&self) -> usize {
        AggregateNetwork::active_flows(self)
    }
    fn bytes_delivered(&self) -> f64 {
        AggregateNetwork::bytes_delivered(self)
    }
    fn peak_aggregates(&self) -> usize {
        AggregateNetwork::peak_aggregates(self)
    }
    fn scale_regime(&self) -> bool {
        self.is_scale_regime()
    }
}

/// splitmix64 — small deterministic generator, no external dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shape of one churn run.
#[derive(Clone, Copy, Debug)]
pub struct ChurnSpec {
    /// Volunteer hosts (paper's testbed is ~40; scaling target is 2000+).
    pub hosts: usize,
    /// Concurrent fetches each host issues per wave.
    pub fetches_per_host: usize,
    /// Shuffle waves (each wave starts `wave_gap` after the previous).
    pub waves: usize,
    /// Seed for the deterministic flow layout.
    pub seed: u64,
}

/// Access-link population: mostly 100 Mbit symmetric (the Emulab
/// testbed), with a 10 Mbit DSL-ish tail.
pub fn churn_topology(spec: &ChurnSpec) -> Topology {
    let mut rng = spec.seed ^ 0xC0FF_EE00;
    let mut topo = Topology::new();
    for _ in 0..spec.hosts {
        let r = splitmix64(&mut rng) % 100;
        if r < 75 {
            topo.add_host(HostLink::symmetric_mbit(100.0, 0.001));
        } else {
            topo.add_host(HostLink::asymmetric_mbit(10.0, 1.0, 0.02));
        }
    }
    topo
}

/// Internet-scale access-link population for the 20k/100k legs: the
/// Anderson-&-Fedak-style volunteer mixture (heavy-tailed access
/// bandwidth, oversubscribed ISP tiers, shared backbone) from
/// [`vmr_core::PopulationSpec::internet`].
pub fn population_topology(spec: &ChurnSpec) -> Topology {
    PopulationSpec::internet(spec.hosts, spec.seed)
        .generate()
        .topo
}

/// The scripted flow starts: `(start instant, spec)`, ascending in time.
pub fn churn_script(spec: &ChurnSpec) -> Vec<(SimTime, FlowSpec)> {
    let mut rng = spec.seed;
    let n = spec.hosts as u64;
    let mut script = Vec::with_capacity(spec.hosts * spec.fetches_per_host * spec.waves);
    for wave in 0..spec.waves {
        let wave_start = SimTime::from_secs(10 * wave as u64);
        for dst in 0..spec.hosts {
            for _ in 0..spec.fetches_per_host {
                let jitter = splitmix64(&mut rng) % 2_000_000; // ≤ 2 s
                let at = wave_start + SimDuration::from_micros(jitter);
                let src = HostId((splitmix64(&mut rng) % n) as u32);
                let dst = HostId(dst as u32);
                let bytes = 200_000 + splitmix64(&mut rng) % 3_800_000;
                let mut fs = FlowSpec::simple(src, dst, bytes);
                fs.setup_s = 0.05 + (splitmix64(&mut rng) % 250) as f64 / 1_000.0;
                let roll = splitmix64(&mut rng) % 100;
                if roll < 20 {
                    fs.priority = Priority::Background;
                }
                if roll < 5 {
                    // NAT-relayed path through a supernode (§III.D).
                    fs.via = vec![HostId((splitmix64(&mut rng) % n) as u32)];
                }
                if roll >= 90 {
                    fs.rate_cap = Some(250_000.0);
                }
                script.push((at, fs));
            }
        }
    }
    script.sort_by_key(|(at, _)| *at);
    script
}

/// Result of driving one churn script to completion.
#[derive(Clone, Copy, Debug)]
pub struct ChurnOutcome {
    /// Flows started.
    pub started: usize,
    /// Flows completed (== started: the script has no aborts).
    pub completed: usize,
    /// Engine events processed: starts, plus every completion/setup
    /// boundary the event loop stopped at.
    pub events: usize,
    /// Peak concurrent in-flight flows observed.
    pub peak_concurrent: usize,
    /// Simulated instant the last flow finished.
    pub makespan: SimTime,
    /// Total payload bytes delivered.
    pub bytes: f64,
    /// Peak simultaneously-coalescing flow-class pools (aggregate
    /// engine only; 0 for the exact engines).
    pub peak_aggregates: usize,
    /// Whether the engine left its exact regime during the run
    /// (aggregate engine only).
    pub scale_regime: bool,
}

/// Replays the script event-by-event (the same pattern the simulation's
/// world loop uses: advance to `next_event_time` or the next scripted
/// start, whichever is sooner) until every flow has completed.
pub fn run_churn<E: FlowEngine>(topo: Topology, script: &[(SimTime, FlowSpec)]) -> ChurnOutcome {
    run_churn_in(E::build(topo), script)
}

/// [`run_churn`] with the engine's flow counters recorded into `obs`
/// (the workload of the `obs_overhead` benchmark).
pub fn run_churn_with_obs<E: FlowEngine>(
    topo: Topology,
    script: &[(SimTime, FlowSpec)],
    obs: &vmr_obs::Obs,
) -> ChurnOutcome {
    run_churn_in(E::build_with_obs(topo, obs), script)
}

/// [`run_churn`] on a caller-built engine — the entry point for policy-
/// parameterized [`AggregateNetwork`] runs.
pub fn run_churn_engine<E: FlowEngine>(net: E, script: &[(SimTime, FlowSpec)]) -> ChurnOutcome {
    run_churn_in(net, script)
}

fn run_churn_in<E: FlowEngine>(mut net: E, script: &[(SimTime, FlowSpec)]) -> ChurnOutcome {
    let mut out = ChurnOutcome {
        started: 0,
        completed: 0,
        events: 0,
        peak_concurrent: 0,
        makespan: SimTime::ZERO,
        bytes: 0.0,
        peak_aggregates: 0,
        scale_regime: false,
    };
    let harvest = |done: Vec<Completion>, out: &mut ChurnOutcome| {
        for c in &done {
            out.makespan = out.makespan.max(c.at);
        }
        out.completed += done.len();
    };
    let mut i = 0usize;
    while i < script.len() {
        let (at, ref fs) = script[i];
        // Drain self-events strictly before the next scripted start.
        while let Some(t) = net.next_event_time() {
            if t >= at {
                break;
            }
            harvest(net.advance(t), &mut out);
            out.events += 1;
        }
        harvest(net.advance(at), &mut out);
        net.start_flow(at, fs.clone());
        out.started += 1;
        out.events += 1;
        out.peak_concurrent = out.peak_concurrent.max(net.active_flows());
        i += 1;
    }
    while let Some(t) = net.next_event_time() {
        assert!(t < SimTime::MAX, "stalled churn flow");
        harvest(net.advance(t), &mut out);
        out.events += 1;
    }
    assert_eq!(out.completed, out.started, "lost flows");
    out.bytes = net.bytes_delivered();
    out.peak_aggregates = net.peak_aggregates();
    out.scale_regime = net.scale_regime();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_churn_runs_identically_on_both_engines() {
        let spec = ChurnSpec {
            hosts: 12,
            fetches_per_host: 3,
            waves: 2,
            seed: 7,
        };
        let script = churn_script(&spec);
        let a = run_churn::<Network>(churn_topology(&spec), &script);
        let b = run_churn::<NaiveNetwork>(churn_topology(&spec), &script);
        assert_eq!(a.started, b.started);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.bytes.to_bits(), b.bytes.to_bits());
        assert!(a.peak_concurrent > spec.hosts, "workload barely overlaps");
    }

    #[test]
    fn aggregate_engine_runs_the_same_script() {
        use vmr_netsim::ScalePolicy;
        let spec = ChurnSpec {
            hosts: 12,
            fetches_per_host: 3,
            waves: 2,
            seed: 7,
        };
        let script = churn_script(&spec);
        let exact = run_churn::<Network>(churn_topology(&spec), &script);
        // Below threshold: the aggregate engine is the exact engine.
        let below = run_churn_engine(
            AggregateNetwork::with_policy(
                churn_topology(&spec),
                &vmr_obs::Obs::detached(),
                ScalePolicy {
                    coalesce_threshold: 10_000,
                    quantum_mantissa_bits: 6,
                },
            ),
            &script,
        );
        assert_eq!(below.makespan, exact.makespan);
        assert_eq!(below.bytes.to_bits(), exact.bytes.to_bits());
        assert_eq!(below.peak_aggregates, 0);
        assert!(!below.scale_regime);
        // Above threshold: all flows still complete, makespan close.
        let above = run_churn_engine(
            AggregateNetwork::with_policy(
                churn_topology(&spec),
                &vmr_obs::Obs::detached(),
                ScalePolicy {
                    coalesce_threshold: 4,
                    quantum_mantissa_bits: 6,
                },
            ),
            &script,
        );
        assert_eq!(above.completed, exact.completed);
        assert!(above.scale_regime);
        let ratio = above.makespan.as_secs_f64() / exact.makespan.as_secs_f64();
        assert!((0.9..=1.5).contains(&ratio), "makespan ratio {ratio}");
    }

    #[test]
    fn population_topology_is_hierarchical() {
        let spec = ChurnSpec {
            hosts: 300,
            fetches_per_host: 1,
            waves: 1,
            seed: 3,
        };
        let topo = population_topology(&spec);
        assert_eq!(topo.len(), 300);
        assert!(topo.is_hierarchical());
    }
}
