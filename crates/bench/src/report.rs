//! Shared reporting helpers for the bench binaries.
//!
//! The ablation binaries used to hand-roll their own stat plumbing
//! (pulling tallies out of `EngineStats`, each formatting its own
//! delay column). They now read the one obs snapshot an experiment
//! returns: quantiles come from [`vmr_obs::Snapshot::histogram`], and
//! full metric dumps from [`vmr_obs::Obs::to_json`].

use std::path::Path;
use vmr_core::ExperimentOutcome;
use vmr_obs::HistogramSummary;

/// The scheduler report-delay distribution of one run, in seconds,
/// from the obs snapshot metric `vcore.report_delay_s`.
///
/// With `--no-default-features` (recording compiled out) the summary
/// is all zeros.
pub fn report_delay(out: &ExperimentOutcome) -> HistogramSummary {
    out.obs.snapshot().histogram("vcore.report_delay_s")
}

/// The `mean (p95)` cell used by the delay columns of the ablation
/// tables. Quantiles are log₂-bucketed, so p95 prints as a round
/// power of two.
pub fn delay_cell(s: &HistogramSummary) -> String {
    format!("{:.1} (p95 {:.0})", s.mean, s.p95)
}

/// Write one run's full metrics snapshot to `path` as a single JSON
/// object keyed by metric name (the `--metrics` flag of the bench
/// binaries).
pub fn write_metrics_json(path: &Path, obs: &vmr_obs::Obs) -> std::io::Result<()> {
    std::fs::write(path, format!("{}\n", obs.to_json()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_cell_shape() {
        let s = HistogramSummary {
            count: 4,
            mean: 12.25,
            p50: 8.0,
            p95: 16.0,
            p99: 16.0,
            max: 14.0,
        };
        assert_eq!(delay_cell(&s), "12.2 (p95 16)");
    }

    #[test]
    fn metrics_json_round_trip() {
        let obs = vmr_obs::Obs::new();
        obs.counter("t.count").add(3);
        let dir = std::env::temp_dir().join("vmr_bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        write_metrics_json(&path, &obs).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with('{') && body.ends_with("}\n"));
        if cfg!(feature = "record") {
            assert!(body.contains("\"t.count\":3"));
        }
        std::fs::remove_file(&path).unwrap();
    }
}
