//! Shuffle-strategy ablation: {baseline, swarm, coded} word-count runs
//! at three rungs of the scaling ladder —
//!
//! * **40 hosts** — the paper's Emulab-testbed scale, exact network
//!   regime;
//! * **2 000 hosts** — an Anderson-&-Fedak volunteer population behind
//!   ISP tiers, `Preset::Internet` (AggregateNetwork past the
//!   coalescing threshold);
//! * **100 000 hosts** — same population model, aggregate regime only.
//!
//! Reports, per leg and strategy, the shuffle byte split
//! (`shuffle.bytes_p2p` / `shuffle.bytes_server_fallback`), swarm chunk
//! and coded send counts, the job makespan and the wall time; asserts
//! the coded strategy's ≥25 % shuffle-byte cut at 2 000 hosts with the
//! makespan inside the 0.75–1.35 band, and that the 100k-host
//! aggregate legs complete. Emits one machine-readable
//! `BENCH_shuffle.json` line.
//!
//! Usage: `cargo run -p vmr-bench --release --bin shuffle_ablation`
//! (`--smoke` shrinks the job geometry for the `SHUFFLE_SMOKE=1` gate
//! in `scripts/check.sh`; same legs, same assertions).

use std::time::Instant;
use vmr_core::{MrJobConfig, MrMode, MrPolicy, Phase, ShuffleConfig};
use vmr_desim::SimTime;
use vmr_vcore::{Engine, HostProfile, PopulationSpec, Preset, ProjectConfig};

#[derive(Clone, Copy)]
struct Leg {
    name: &'static str,
    hosts: usize,
    n_maps: usize,
    n_reduces: usize,
    input_bytes: u64,
    /// Internet population + aggregate network (vs the exact testbed).
    internet: bool,
}

struct Measured {
    makespan_s: f64,
    bytes_p2p: u64,
    bytes_fallback: u64,
    chunks_swarmed: u64,
    coded_sends: u64,
    wall_s: f64,
}

impl Measured {
    fn shuffle_bytes(&self) -> u64 {
        self.bytes_p2p + self.bytes_fallback
    }
}

fn run_leg(leg: &Leg, shuffle: ShuffleConfig) -> Measured {
    let mut pc = if leg.internet {
        ProjectConfig::preset(Preset::Internet)
    } else {
        ProjectConfig::default()
    };
    pc.shuffle = shuffle;
    let seed = 0x5FF1E;
    let mut builder = Engine::builder(seed).config(pc);
    builder = if leg.internet {
        builder.population(PopulationSpec::internet(leg.hosts, seed))
    } else {
        builder.clients((0..leg.hosts).map(|_| {
            (
                HostProfile::pc3001(),
                vmr_netsim::HostLink::symmetric_mbit(100.0, 0.000_5),
            )
        }))
    };
    let mut eng = builder.build();
    eng.obs.journal.set_enabled(false);
    let mut pol = MrPolicy::new();
    let mut jc = MrJobConfig::paper_wordcount(leg.n_maps, leg.n_reduces, MrMode::InterClient);
    jc.input_bytes = leg.input_bytes;
    pol.submit_job(&mut eng, jc);
    let t0 = Instant::now();
    eng.run_until(&mut pol, SimTime::from_secs(400_000), |e| {
        e.db.all_wus_terminal()
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let job = &pol.tracker.jobs[0];
    assert_eq!(job.phase, Phase::Done, "{}: job did not complete", leg.name);
    let snap = eng.obs.snapshot();
    Measured {
        makespan_s: job.total_time().expect("finished job has a makespan"),
        bytes_p2p: snap.counter("shuffle.bytes_p2p"),
        bytes_fallback: snap.counter("shuffle.bytes_server_fallback"),
        chunks_swarmed: snap.counter("shuffle.chunks_swarmed"),
        coded_sends: snap.counter("shuffle.coded_sends"),
        wall_s,
    }
}

const STRATEGIES: [&str; 3] = ["baseline", "swarm", "coded"];

fn strategy(name: &str) -> ShuffleConfig {
    match name {
        "baseline" => ShuffleConfig::default(),
        "swarm" => ShuffleConfig::swarm(),
        "coded" => ShuffleConfig::coded(2),
        other => panic!("unknown strategy {other}"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let legs = if smoke {
        [
            Leg {
                name: "testbed40",
                hosts: 40,
                n_maps: 12,
                n_reduces: 4,
                input_bytes: 96 << 20,
                internet: false,
            },
            Leg {
                name: "internet2k",
                hosts: 2_000,
                n_maps: 60,
                n_reduces: 12,
                input_bytes: 240 << 20,
                internet: true,
            },
            Leg {
                name: "internet100k",
                hosts: 100_000,
                n_maps: 60,
                n_reduces: 12,
                input_bytes: 240 << 20,
                internet: true,
            },
        ]
    } else {
        [
            Leg {
                name: "testbed40",
                hosts: 40,
                n_maps: 20,
                n_reduces: 5,
                input_bytes: 1 << 30,
                internet: false,
            },
            Leg {
                name: "internet2k",
                hosts: 2_000,
                n_maps: 200,
                n_reduces: 40,
                input_bytes: 1 << 30,
                internet: true,
            },
            Leg {
                name: "internet100k",
                hosts: 100_000,
                n_maps: 200,
                n_reduces: 40,
                input_bytes: 1 << 30,
                internet: true,
            },
        ]
    };

    let mut fields = Vec::new();
    let mut by_leg: Vec<Vec<Measured>> = Vec::new();
    for leg in &legs {
        let mut row = Vec::new();
        for name in STRATEGIES {
            eprintln!("{} / {} …", leg.name, name);
            let m = run_leg(leg, strategy(name));
            eprintln!(
                "{:<14} {:<9} makespan {:>8.1} s  shuffle {:>7.1} MiB \
                 (p2p {:>7.1}, fallback {:>6.1})  chunks {:>6}  coded {:>5}  wall {:>7.2} s",
                leg.name,
                name,
                m.makespan_s,
                m.shuffle_bytes() as f64 / (1 << 20) as f64,
                m.bytes_p2p as f64 / (1 << 20) as f64,
                m.bytes_fallback as f64 / (1 << 20) as f64,
                m.chunks_swarmed,
                m.coded_sends,
                m.wall_s,
            );
            fields.push(format!(
                "\"{}_{}\": {{\"hosts\": {}, \"makespan_s\": {:.1}, \"shuffle_bytes\": {}, \
                 \"bytes_p2p\": {}, \"bytes_server_fallback\": {}, \"chunks_swarmed\": {}, \
                 \"coded_sends\": {}, \"wall_s\": {:.3}}}",
                leg.name,
                name,
                leg.hosts,
                m.makespan_s,
                m.shuffle_bytes(),
                m.bytes_p2p,
                m.bytes_fallback,
                m.chunks_swarmed,
                m.coded_sends,
                m.wall_s,
            ));
            row.push(m);
        }
        by_leg.push(row);
    }

    // Sanity: every swarm leg actually swarmed; every coded leg coded.
    for row in &by_leg {
        assert!(row[1].chunks_swarmed > 0, "swarm leg never chunked");
        assert!(row[2].coded_sends > 0, "coded leg never coded");
    }

    // The headline claim, at volunteer-cloud scale: coded distribution
    // cuts total shuffle bytes ≥25 % without distorting the makespan.
    let base2k = &by_leg[1][0];
    let coded2k = &by_leg[1][2];
    let cut = 1.0 - coded2k.shuffle_bytes() as f64 / base2k.shuffle_bytes().max(1) as f64;
    let ratio = coded2k.makespan_s / base2k.makespan_s.max(1e-9);
    eprintln!(
        "2000-host coded shuffle-byte cut: {:.1} % (makespan ratio {:.3})",
        cut * 100.0,
        ratio
    );
    assert!(
        cut >= 0.25,
        "coded must cut ≥25% of shuffle bytes at 2000 hosts, got {:.1}%",
        cut * 100.0
    );
    assert!(
        (0.75..=1.35).contains(&ratio),
        "2000-host coded makespan ratio out of band: {ratio:.3}"
    );

    println!(
        "BENCH_shuffle.json {{\"smoke\": {}, \"coded_cut_2k\": {:.4}, \
         \"coded_makespan_ratio_2k\": {:.4}, {}}}",
        smoke,
        cut,
        ratio,
        fields.join(", "),
    );
}
