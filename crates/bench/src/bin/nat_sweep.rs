//! Ablation **A5**: NAT population × traversal policy (§III.D).
//!
//! The paper's tiered proposal — direct, connection reversal, TCP hole
//! punching, relay — against the prototype's direct-only connects and a
//! relay-only strawman, over increasingly hostile NAT mixes.
//!
//! Usage: `cargo run -p vmr-bench --release --bin nat_sweep`

use vmr_bench::calibrated_sizing;
use vmr_bench::run_or_exit;
use vmr_core::{ExperimentConfig, MrMode};
use vmr_netsim::{NatMix, NatType, TraversalPolicy};

fn main() {
    let sizing = calibrated_sizing();
    let mixes: Vec<(&str, Option<NatMix>)> = vec![
        ("all-open (Emulab)", None),
        ("internet 2011 mix", Some(NatMix::internet_2011())),
        (
            "hostile (70% sym/blocked)",
            Some(NatMix::new(vec![
                (NatType::Open, 0.05),
                (NatType::PortRestricted, 0.25),
                (NatType::Symmetric, 0.45),
                (NatType::BlockedInbound, 0.25),
            ])),
        ),
    ];
    let policies: Vec<(&str, TraversalPolicy)> = vec![
        ("direct-only (prototype)", TraversalPolicy::direct_only()),
        ("direct+relay", TraversalPolicy::direct_or_relay()),
        ("tiered (paper §III.D)", TraversalPolicy::default()),
    ];
    println!("# A5 — NAT mix × traversal policy (16 nodes, 12 maps, 4 reduces, 512 MB, BOINC-MR)");
    println!(
        "{:<26} | {:<24} | {:>8} | {:>9} | {:>10} | {:>26}",
        "population", "policy", "total s", "fallbacks", "p2p OK", "paths d/r/h/relay"
    );
    for (mix_name, mix) in &mixes {
        for (pol_name, pol) in &policies {
            let mut cfg = ExperimentConfig::table1(16, 12, 4, MrMode::InterClient);
            cfg.sizing = sizing;
            cfg.input_bytes = 512 << 20;
            cfg.nat_mix = mix.clone();
            cfg.traversal = pol.clone();
            cfg.seed = 0xAA7;
            let out = run_or_exit(&cfg);
            assert!(out.all_done);
            let t = &out.stats.traversal;
            println!(
                "{:<26} | {:<24} | {:>8.0} | {:>9} | {:>10} | {:>6}/{}/{}/{}",
                mix_name,
                pol_name,
                out.reports[0].total_s,
                out.stats.server_fallbacks,
                t.successes(),
                t.direct,
                t.reversal,
                t.hole_punch,
                t.relay
            );
        }
    }
    println!(
        "\nShape: direct-only degenerates to the server fall-back as soon as \
         volunteers sit behind NATs (the prototype's limitation); the tiered \
         policy keeps transfers peer-to-peer, leaning on relay only for the \
         symmetric/blocked tail."
    );
}
