//! Ablation **A6**: TCP-Nice style background transfers (§III.C/D).
//!
//! "It is still in our best interest to make good use of the available
//! bandwidth. To that end, we intend to incorporate TCP-Nice … optimized
//! to support background transfers." This ablation runs bulk volunteer
//! transfers as foreground vs background while a volunteer's own
//! interactive traffic shares the link, measuring both the interference
//! and the scavenger throughput.
//!
//! Usage: `cargo run -p vmr-bench --release --bin nice_ablation`

use vmr_desim::SimTime;
use vmr_netsim::{FlowSpec, HostLink, Network, Priority, Topology};

fn run(bulk_priority: Priority) -> (f64, f64) {
    // One volunteer with a 10 Mbit consumer link: a 60 MB map-output
    // upload to a peer, while the volunteer browses (a 4 MB foreground
    // fetch every 20 s).
    let mut topo = Topology::new();
    let volunteer = topo.add_host(HostLink::asymmetric_mbit(16.0, 10.0, 0.01));
    let peer = topo.add_host(HostLink::symmetric_mbit(100.0, 0.005));
    let web = topo.add_host(HostLink::symmetric_mbit(100.0, 0.005));
    let mut net = Network::new(topo);

    let mut bulk = FlowSpec::simple(volunteer, peer, 60 << 20);
    bulk.priority = bulk_priority;
    let bulk_id = net.start_flow(SimTime::ZERO, bulk);

    // Interactive uploads (e.g. photos, video calls) every 20 s.
    let mut browse_total = 0.0;
    let mut browse_n = 0u32;
    let mut bulk_done: Option<f64> = None;
    let mut next_browse = 0u64;
    let mut pending = std::collections::HashMap::new();
    while bulk_done.is_none() || next_browse < 20 {
        // Schedule browse flows up to 20 of them.
        if next_browse < 20 {
            let at = SimTime::from_secs(next_browse * 20);
            if net.next_event_time().map(|t| t >= at).unwrap_or(true) {
                let f = net.start_flow(at, FlowSpec::simple(volunteer, web, 4 << 20));
                pending.insert(f, at);
                next_browse += 1;
                continue;
            }
        }
        let Some(t) = net.next_event_time() else {
            break;
        };
        for c in net.advance(t) {
            if c.id == bulk_id {
                bulk_done = Some(c.at.as_secs_f64());
            } else if let Some(start) = pending.remove(&c.id) {
                browse_total += c.at.saturating_since(start).as_secs_f64();
                browse_n += 1;
            }
        }
    }
    // Drain the remaining browse flows.
    while let Some(t) = net.next_event_time() {
        for c in net.advance(t) {
            if let Some(start) = pending.remove(&c.id) {
                browse_total += c.at.saturating_since(start).as_secs_f64();
                browse_n += 1;
            }
        }
        if pending.is_empty() {
            break;
        }
    }
    (
        bulk_done.unwrap_or(f64::NAN),
        browse_total / browse_n.max(1) as f64,
    )
}

fn main() {
    println!("# A6 — TCP-Nice background transfers vs greedy foreground");
    println!("# volunteer on a 10 Mbit uplink: 60 MB map-output upload + interactive 4 MB flows");
    let (greedy_bulk, greedy_browse) = run(Priority::Foreground);
    let (nice_bulk, nice_browse) = run(Priority::Background);
    println!(
        "{:<22} | {:>16} | {:>22}",
        "bulk class", "bulk done (s)", "mean interactive (s)"
    );
    println!(
        "{:<22} | {:>16.1} | {:>22.2}",
        "greedy foreground", greedy_bulk, greedy_browse
    );
    println!(
        "{:<22} | {:>16.1} | {:>22.2}",
        "TCP-Nice background", nice_bulk, nice_browse
    );
    println!(
        "\nShape: the nice transfer finishes later but interactive latency \
         returns to its unloaded value — the property that makes volunteers \
         tolerate inter-client serving at all."
    );
}
