//! Ablation **A4**: replication factor / quorum under byzantine
//! volunteers (§III.B's validation design).
//!
//! Cost axis: more replicas = more redundant compute + transfers.
//! Benefit axis: byzantine outputs survive only if they reach quorum.
//!
//! Usage: `cargo run -p vmr-bench --release --bin replication_sweep`

use vmr_bench::calibrated_sizing;
use vmr_bench::run_or_exit;
use vmr_core::{ExperimentConfig, MrMode};
use vmr_vcore::{ClientId, FaultPlan};

fn main() {
    let sizing = calibrated_sizing();
    println!("# A4 — replication/quorum sweep (12 nodes, 8 maps, 2 reduces, 256 MB)");
    println!(
        "{:>11} | {:>9} | {:>8} | {:>10} | {:>7}",
        "replication", "byzantine", "done", "total s", "grants"
    );
    for replication in [1u32, 2, 3] {
        for n_byz in [0usize, 2] {
            let mut cfg = ExperimentConfig::table1(12, 8, 2, MrMode::InterClient);
            cfg.sizing = sizing;
            cfg.input_bytes = 256 << 20;
            cfg.replication = replication;
            cfg.quorum = replication.max(1);
            cfg.seed = 1000 + replication as u64 * 10 + n_byz as u64;
            cfg.fault = FaultPlan {
                byzantine: (0..n_byz).map(|i| ClientId(i as u32)).collect(),
                corruption_prob: 1.0,
                ..FaultPlan::default()
            };
            let out = run_or_exit(&cfg);
            let total = out.reports.first().map(|r| r.total_s).unwrap_or(f64::NAN);
            println!(
                "{:>11} | {:>9} | {:>8} | {:>10.0} | {:>7}",
                replication, n_byz, out.all_done, total, out.stats.grants
            );
        }
    }
    println!(
        "\nShape: replication 1 is fastest but accepts byzantine outputs \
         unchecked (correctness silently lost — with quorum 1 any reply \
         validates); replication 2 (the paper's choice) detects disagreement \
         and re-issues replicas, trading time for integrity; replication 3 \
         pays more redundant work for faster conflict resolution."
    );
}
