//! Durability study: WAL cost and crash-recovery time vs checkpoint
//! cadence on a Table I workload.
//!
//! Usage: `cargo run -p vmr-bench --release --bin recovery_study \
//!     [--full] [--smoke]`
//!
//! Default mode sweeps the snapshot interval over a Table I row
//! (ServerRelay, first geometry) and reports, per interval: the run's
//! wall-clock against the in-memory baseline, WAL record rate, log and
//! snapshot sizes, and the time to materialize all server state from
//! the final log image (recovery replays from the *last* snapshot, so
//! a longer cadence means a longer replay tail). `--full` uses the
//! paper's 1 GB input instead of the quick 256 MB subset.
//!
//! The sweep also reports the **compacted** image size per cadence
//! (`cmpct_KiB`): what the on-disk mirror shrinks to once frames
//! superseded by the latest committed full snapshot are dropped — and
//! a second table compares plan shapes (full snapshots, incremental,
//! sharded) at a fixed cadence.
//!
//! `--smoke` is the check.sh gate: crash one run at a fixed record
//! count, mirror its WAL through a file sink, resume from the mirrored
//! bytes, and byte-compare the Table I row against an uninterrupted
//! run — exit 1 on any divergence. Runs twice: once with the classic
//! single-log plan, once with sharding + incremental snapshots +
//! mirror compaction all enabled, resuming from the compacted
//! per-section files on disk.

use std::time::Instant;
use vmr_bench::{calibrated_sizing, row_config, run_or_exit, table1_rows};
use vmr_core::{format_row, resume_experiment, ExperimentConfig, MrMode, RecoveredServerState};
use vmr_durable::{compact, sink_image, CompactionPolicy, CrashPlan, DurabilityPlan};

fn study_config(full: bool) -> ExperimentConfig {
    let row = table1_rows()[0];
    let mut cfg = row_config(&row, calibrated_sizing());
    if !full {
        cfg.input_bytes = 256 << 20;
    }
    cfg
}

fn sweep(full: bool) {
    let cfg = study_config(full);
    println!(
        "# Durability study — Table I row: {} nodes, {} maps, {} reduces, {} MiB input ({})",
        cfg.nodes.total(),
        cfg.n_maps,
        cfg.n_reduces,
        cfg.input_bytes >> 20,
        cfg.mode,
    );

    // Warm-up run (allocator + page-cache), then best-of-N timing so
    // the overhead column measures journaling, not cold-start noise.
    let base = run_or_exit(&cfg);
    assert!(base.all_done, "baseline did not complete");
    let reps = if full { 3 } else { 10 };
    let time_it = |c: &ExperimentConfig| -> f64 {
        (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(run_or_exit(c));
                t0.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min)
    };
    let base_ms = time_it(&cfg);
    println!(
        "# baseline (durability off): {:.2} ms wall (best of {reps}), {:.0} s simulated",
        base_ms,
        base.finished_at.as_secs_f64()
    );
    println!(
        "{:>10} | {:>8} | {:>9} | {:>8} | {:>8} | {:>9} | {:>9} | {:>5} | {:>8} | {:>8}",
        "snap_iv_s",
        "wall_ms",
        "overhead",
        "records",
        "rec_p_s",
        "wal_KiB",
        "cmpct_KiB",
        "snaps",
        "replay",
        "recov_us"
    );
    // 0.0 = WAL only, no snapshots: recovery replays the whole log.
    for interval in [0.0, 10.0, 30.0, 60.0, 120.0, 300.0] {
        let mut c = cfg.clone();
        c.durable = DurabilityPlan::new(interval);
        let out = run_or_exit(&c);
        assert!(out.all_done && !out.crashed);
        let wall_ms = time_it(&c);
        let snap = out.obs.snapshot();
        let records = snap.counter("dur.wal_records");
        let wal = out.wal.as_ref().unwrap();
        let snaps = snap.histogram("dur.snapshot_us");
        let compacted = compact(wal).expect("compaction failed");
        if snaps.count > 0 {
            assert!(
                compacted.len() < wal.len(),
                "a committed snapshot must let compaction reclaim bytes"
            );
        }
        let t1 = Instant::now();
        let rec = RecoveredServerState::from_log(wal).expect("recovery failed");
        let recov_us = t1.elapsed().as_secs_f64() * 1e6;
        println!(
            "{:>10} | {:>8.2} | {:>+7.1}% | {:>8} | {:>8.1} | {:>9.1} | {:>9.1} | {:>5} | {:>8} | {:>8.0}",
            if interval > 0.0 {
                format!("{interval:.0}")
            } else {
                "wal-only".to_string()
            },
            wall_ms,
            (wall_ms / base_ms - 1.0) * 100.0,
            records,
            records as f64 / out.finished_at.as_secs_f64(),
            wal.len() as f64 / 1024.0,
            compacted.len() as f64 / 1024.0,
            snaps.count,
            rec.replayed,
            recov_us,
        );
        // Same simulation either way: durability must not perturb it.
        assert_eq!(
            out.reports[0].total_s.to_bits(),
            base.reports[0].total_s.to_bits(),
            "journaling changed the simulation"
        );
    }

    // Plan shapes at one cadence: full snapshots vs incremental vs
    // sharded. Same workload, same 60 s checkpoint interval.
    println!();
    println!("# plan shapes at 60 s cadence");
    println!(
        "{:>16} | {:>9} | {:>9} | {:>8} | {:>8}",
        "plan", "wal_KiB", "cmpct_KiB", "replay", "recov_us"
    );
    let shapes: [(&str, DurabilityPlan); 4] = [
        ("full", DurabilityPlan::new(60.0)),
        ("inc(k=4)", DurabilityPlan::new(60.0).with_incremental(4)),
        ("sharded", DurabilityPlan::new(60.0).with_sharding()),
        (
            "sharded+inc(4)",
            DurabilityPlan::new(60.0)
                .with_incremental(4)
                .with_sharding(),
        ),
    ];
    for (name, plan) in shapes {
        let mut c = cfg.clone();
        c.durable = plan;
        let out = run_or_exit(&c);
        assert!(out.all_done && !out.crashed);
        let wal = out.wal.as_ref().unwrap();
        let compacted = compact(wal).expect("compaction failed");
        let t1 = Instant::now();
        let rec = RecoveredServerState::from_log(wal).expect("recovery failed");
        let recov_us = t1.elapsed().as_secs_f64() * 1e6;
        println!(
            "{:>16} | {:>9.1} | {:>9.1} | {:>8} | {:>8.0}",
            name,
            wal.len() as f64 / 1024.0,
            compacted.len() as f64 / 1024.0,
            rec.replayed,
            recov_us,
        );
        assert_eq!(
            out.reports[0].total_s.to_bits(),
            base.reports[0].total_s.to_bits(),
            "plan shape changed the simulation"
        );
    }
}

/// Crash → mirror → resume → byte-compare. Returns false on mismatch.
fn smoke() -> bool {
    let mut cfg = ExperimentConfig::table1(5, 3, 2, MrMode::InterClient);
    cfg.input_bytes = 32 << 20;
    cfg.durable = DurabilityPlan::new(120.0);

    let base = run_or_exit(&cfg);
    assert!(base.all_done, "smoke baseline did not complete");
    let committed = RecoveredServerState::from_log(base.wal.as_ref().unwrap())
        .expect("baseline log unreadable")
        .committed_records;

    // Crash mid-run, mirroring committed bytes to a file sink — resume
    // from what the "disk" holds, not the in-memory image.
    let sink = std::env::temp_dir().join(format!("vmr-recovery-smoke-{}.wal", std::process::id()));
    let mut crashed_cfg = cfg.clone();
    crashed_cfg.durable = cfg
        .durable
        .clone()
        .with_crash(CrashPlan::after_records(committed / 2))
        .with_sink(&sink);
    let dead = run_or_exit(&crashed_cfg);
    assert!(dead.crashed && !dead.all_done, "crash plan never fired");
    let disk = std::fs::read(&sink).expect("WAL mirror missing");
    std::fs::remove_file(&sink).ok();

    let resumed = resume_experiment(&crashed_cfg, &disk).expect("resume failed");
    let want = format_row(5, 3, 2, &base.reports[0]);
    let got = format_row(5, 3, 2, &resumed.reports[0]);
    let ok = resumed.all_done
        && got == want
        && resumed.finished_at == base.finished_at
        && resumed.wal == base.wal;
    if ok {
        println!(
            "recovery smoke OK: crashed at record {} of {}, resumed run is byte-identical",
            committed / 2,
            committed
        );
        println!("  row: {got}");
    } else {
        eprintln!("recovery smoke FAILED");
        eprintln!("  baseline: {want} (finished {:?})", base.finished_at);
        eprintln!("  resumed:  {got} (finished {:?})", resumed.finished_at);
    }
    ok
}

/// Same crash → resume → byte-compare gate with every durability
/// feature on: incremental snapshots, a sharded per-section WAL, and
/// mirror compaction — resuming from the compacted files on disk.
fn smoke_sharded_compacted() -> bool {
    let mut cfg = ExperimentConfig::table1(5, 3, 2, MrMode::InterClient);
    cfg.input_bytes = 32 << 20;
    cfg.durable = DurabilityPlan::new(120.0)
        .with_incremental(3)
        .with_sharding()
        .with_compaction(CompactionPolicy::max_mirror_bytes(4096));

    let base = run_or_exit(&cfg);
    assert!(base.all_done, "sharded smoke baseline did not complete");
    let committed = RecoveredServerState::from_log(base.wal.as_ref().unwrap())
        .expect("baseline log unreadable")
        .committed_records;

    let sink = std::env::temp_dir().join(format!(
        "vmr-recovery-smoke-sharded-{}.wal",
        std::process::id()
    ));
    let mut crashed_cfg = cfg.clone();
    crashed_cfg.durable = cfg
        .durable
        .clone()
        .with_crash(CrashPlan::after_records(committed / 2))
        .with_sink(&sink);
    let dead = run_or_exit(&crashed_cfg);
    assert!(dead.crashed && !dead.all_done, "crash plan never fired");
    // Reassemble the per-section mirror files into one bundle image —
    // exactly what a restarted server would read off disk.
    let disk = sink_image(&crashed_cfg.durable).expect("WAL shard mirrors missing");
    let mem_committed = RecoveredServerState::from_log(dead.wal.as_ref().unwrap())
        .expect("in-memory image unreadable")
        .committed_bytes;
    for p in crashed_cfg.durable.sink_paths() {
        std::fs::remove_file(p).ok();
    }

    let resumed = resume_experiment(&crashed_cfg, &disk).expect("sharded resume failed");
    let want = format_row(5, 3, 2, &base.reports[0]);
    let got = format_row(5, 3, 2, &resumed.reports[0]);
    let ok = resumed.all_done
        && got == want
        && resumed.finished_at == base.finished_at
        && resumed.wal == base.wal;
    if ok {
        println!(
            "sharded+inc+compacted smoke OK: {} B compacted mirror vs {} B committed log, \
             resumed run is byte-identical",
            disk.len(),
            mem_committed,
        );
        println!("  row: {got}");
    } else {
        eprintln!("sharded+inc+compacted smoke FAILED");
        eprintln!("  baseline: {want} (finished {:?})", base.finished_at);
        eprintln!("  resumed:  {got} (finished {:?})", resumed.finished_at);
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        if !smoke() || !smoke_sharded_compacted() {
            std::process::exit(1);
        }
        return;
    }
    sweep(args.iter().any(|a| a == "--full"));
}
