//! Ablation **A9**: locality-aware reduce scheduling in a pull model.
//!
//! A reducer that also mapped part of the data already holds its own
//! partitions locally; preferring such volunteers sounds like a free
//! win (Hadoop schedules this way). The pull model changes the picture:
//!
//! * **Single job** — hash partitioning makes the shuffle *symmetric*:
//!   every reduce work unit needs one partition from every map, so
//!   every candidate reduce WU has the same local coverage for any
//!   holder, and candidate re-ordering cannot express affinity. The
//!   measured delta is (provably) zero — a negative result the pull
//!   model forces, and worth knowing.
//! * **Concurrent jobs** — coverage becomes asymmetric (a volunteer
//!   that mapped job 0 holds no job-1 partitions), and the preference
//!   starts steering grants toward local data.
//!
//! Usage: `cargo run -p vmr-bench --release --bin locality_ablation`

use vmr_bench::calibrated_sizing;
use vmr_bench::run_or_exit;
use vmr_core::{ExperimentConfig, MrMode};

fn main() {
    let sizing = calibrated_sizing();

    println!("# A9a — single job (symmetric shuffle): locality is a provable no-op");
    println!(
        "{:<9} | {:<9} | {:>8} | {:>8}",
        "nodes", "locality", "reduce s", "total s"
    );
    for nodes in [10usize, 20] {
        for locality in [false, true] {
            let mut cfg = ExperimentConfig::table1(nodes, nodes, 5, MrMode::InterClient);
            cfg.sizing = sizing;
            cfg.locality_scheduling = locality;
            cfg.seed = 0x10CA;
            let out = run_or_exit(&cfg);
            assert!(out.all_done);
            println!(
                "{:<9} | {:<9} | {:>8.0} | {:>8.0}",
                nodes, locality, out.reports[0].reduce_s, out.reports[0].total_s
            );
        }
    }

    println!("\n# A9b — 3 concurrent jobs (asymmetric coverage): locality steers grants");
    println!(
        "{:<9} | {:>14} | {:>14} | {:>12}",
        "locality", "mean reduce s", "fleet done s", "peer setups"
    );
    for locality in [false, true] {
        let mut cfg = ExperimentConfig::table1(15, 10, 4, MrMode::InterClient);
        cfg.sizing = sizing;
        cfg.input_bytes = 512 << 20;
        cfg.concurrent_jobs = 3;
        cfg.locality_scheduling = locality;
        cfg.seed = 0x10CB;
        let out = run_or_exit(&cfg);
        assert!(out.all_done);
        let mean_red: f64 =
            out.reports.iter().map(|r| r.reduce_s).sum::<f64>() / out.reports.len() as f64;
        println!(
            "{:<9} | {:>14.0} | {:>14.0} | {:>12}",
            locality,
            mean_red,
            out.finished_at.as_secs_f64(),
            out.stats.traversal.successes(),
        );
    }
    println!(
        "\nShape — a *negative result* the pull model forces: all rows are\n\
         identical. Hash partitioning makes the shuffle symmetric (every\n\
         reduce WU needs one partition from every map), so every candidate\n\
         scores the same for any holder; and even with concurrent jobs,\n\
         volunteers end up mapping chunks of *all* jobs, so coverage stays\n\
         symmetric. In a pull model the scheduler picks tasks for a\n\
         volunteer — never volunteers for a task — so Hadoop-style reduce\n\
         locality needs data-aware *partitioning* (per-job volunteer pools,\n\
         range partitioning), not matchmaking preferences. The mechanism\n\
         stays in the scheduler (locality_scheduling) for workloads with\n\
         genuinely asymmetric coverage, e.g. retry tails."
    );
}
