//! Sharded server-core scaling study.
//!
//! Drives the standalone serve loop — feeder refill, batched scheduler
//! RPCs, transitioner passes — against the same database partitioned
//! into 1/2/4/8 `wu_id mod n` shards, and measures wall-clock
//! throughput per shard count. The machine has one core, so this is
//! *not* a thread-scaling study: the RPC speedup comes from the
//! algorithmic win sharding buys, the O(feeder/n) segment-local
//! eviction on every grant (a 1-shard feeder pays an O(feeder) retain
//! per granted result). Transitioner throughput has no such term and
//! stays flat — reported as-is.
//!
//! Every shard count must grant the *same results to the same clients
//! in the same order* (the engine's bit-identity contract); the run
//! asserts a fingerprint of the full grant stream across shard counts
//! before it reports any number.
//!
//! Wall clocks are best-of-3 per shard count (the loop is
//! deterministic, so repeat spread is pure machine noise). Emits one
//! machine-readable line, `BENCH_shard.json`, with every row plus the
//! headline 4-shard RPC speedup (check.sh redirects it into the
//! repo-root file). `--smoke` shrinks the workload to one iteration
//! and skips the speedup floor (for CI boxes with noisy clocks).

use std::time::Instant;
use vmr_desim::SimTime;
use vmr_vcore::sched::WorkRequest;
use vmr_vcore::{
    run_transition_pass, serve_batch, ClientId, Db, Feeder, WorkUnitSpec, WorkerPool, WuState,
};

/// FNV-1a over the grant stream: client, rid, order all folded in.
fn fold(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01B3)
}

struct Row {
    shards: usize,
    rpcs: u64,
    grants: u64,
    serve_wall_s: f64,
    rpcs_per_s: f64,
    transitions: u64,
    trans_wall_s: f64,
    trans_per_s: f64,
    fingerprint: u64,
}

/// Best-of-`iters` wrapper: the serve loop is deterministic, so wall
/// time differences between repeats are pure machine noise — the
/// minimum is the honest estimate.
fn run_best_of(iters: u32, shards: usize, n_wus: usize, feeder_slots: usize, clients: u32) -> Row {
    let mut best: Option<Row> = None;
    for _ in 0..iters {
        let r = run(shards, n_wus, feeder_slots, clients);
        best = Some(match best {
            None => r,
            Some(b) => {
                assert_eq!(r.fingerprint, b.fingerprint, "repeat diverged");
                Row {
                    serve_wall_s: r.serve_wall_s.min(b.serve_wall_s),
                    rpcs_per_s: r.rpcs_per_s.max(b.rpcs_per_s),
                    trans_wall_s: r.trans_wall_s.min(b.trans_wall_s),
                    trans_per_s: r.trans_per_s.max(b.trans_per_s),
                    ..b
                }
            }
        });
    }
    best.expect("at least one iteration")
}

fn run(shards: usize, n_wus: usize, feeder_slots: usize, clients: u32) -> Row {
    let pool = WorkerPool::sequential();
    let mut db = Db::with_shards(shards);
    for i in 0..n_wus {
        db.insert_workunit(
            WorkUnitSpec::basic(format!("wu{i}"), "app", 1e9),
            SimTime::ZERO,
        );
    }
    let mut feeder = Feeder::new(shards);

    // Serve loop: refill when the cache runs low (the feeder daemon's
    // cadence), then stream scheduler RPCs round-robin over the client
    // fleet until every replica is granted. Grants evict shard-locally
    // — the measured hot path.
    let mut rpcs = 0u64;
    let mut grants = 0u64;
    let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
    let mut next_client = 0u32;
    let now = SimTime::from_secs(1);
    let deadline = SimTime::from_secs(100_000);
    let serve_start = Instant::now();
    loop {
        if feeder.len() < 1024 {
            feeder.refill(&db, feeder_slots, &pool);
            if feeder.is_empty() {
                break;
            }
        }
        let reqs: Vec<WorkRequest> = (0..256)
            .map(|k| WorkRequest {
                client: ClientId((next_client + k) % clients),
                slots_wanted: 4,
            })
            .collect();
        next_client = (next_client + 256) % clients;
        let batch = serve_batch(&mut db, &mut feeder, &reqs, 4, now, |_, _| deadline);
        rpcs += batch.len() as u64;
        for g in &batch {
            grants += g.granted.len() as u64;
            fingerprint = fold(fingerprint, g.client.0 as u64);
            for &rid in &g.granted {
                fingerprint = fold(fingerprint, rid.0 as u64);
            }
        }
    }
    let serve_wall_s = serve_start.elapsed().as_secs_f64();

    // Transitioner leg: report every granted replica (setup, untimed),
    // then one pass validates the whole table.
    let wus: Vec<_> = db.wu_ids().collect();
    for &wu in &wus {
        for rid in db.results_of(wu).to_vec() {
            if db.result(rid).client.is_some() {
                db.mark_reported(
                    rid,
                    vmr_vcore::ResultOutcome::Success,
                    Some(vmr_vcore::OutputFingerprint(7)),
                    SimTime::from_secs(2),
                );
            }
        }
    }
    let trans_start = Instant::now();
    let transitions = run_transition_pass(&mut db, SimTime::from_secs(3), &pool).len() as u64;
    let trans_wall_s = trans_start.elapsed().as_secs_f64();
    for &wu in &wus {
        assert_eq!(
            db.wu(wu).state,
            WuState::Validated,
            "bench WU failed to validate"
        );
    }

    Row {
        shards,
        rpcs,
        grants,
        serve_wall_s,
        rpcs_per_s: rpcs as f64 / serve_wall_s,
        transitions,
        trans_wall_s,
        trans_per_s: transitions as f64 / trans_wall_s,
        fingerprint,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_wus, feeder_slots, clients, iters) = if smoke {
        (5_000, 8192, 128, 1)
    } else {
        (50_000, 16384, 512, 3)
    };
    println!(
        "# shard scaling — {n_wus} WUs ({} results), feeder {feeder_slots} slots, {clients} clients, 1 worker",
        2 * n_wus
    );
    println!(
        "{:>6} | {:>8} | {:>8} | {:>10} | {:>11} | {:>11} | {:>13}",
        "shards", "rpcs", "grants", "serve s", "rpcs/s", "transitions", "transitions/s"
    );
    println!("{}", "-".repeat(86));

    let mut rows: Vec<Row> = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let r = run_best_of(iters, shards, n_wus, feeder_slots, clients);
        println!(
            "{:>6} | {:>8} | {:>8} | {:>10.3} | {:>11.0} | {:>11} | {:>13.0}",
            r.shards, r.rpcs, r.grants, r.serve_wall_s, r.rpcs_per_s, r.transitions, r.trans_per_s
        );
        rows.push(r);
    }

    // Bit-identity before performance: every shard count granted the
    // same stream.
    for r in &rows[1..] {
        assert_eq!(
            r.fingerprint, rows[0].fingerprint,
            "{}-shard grant stream diverged from 1-shard",
            r.shards
        );
        assert_eq!(r.grants, rows[0].grants);
        assert_eq!(r.rpcs, rows[0].rpcs);
    }

    let speedup = |n: usize| -> f64 {
        let at = |s: usize| {
            rows.iter()
                .find(|r| r.shards == s)
                .map(|r| r.rpcs_per_s)
                .unwrap_or(f64::NAN)
        };
        at(n) / at(1)
    };
    println!(
        "\n4-shard RPC speedup over 1 shard: {:.2}x (segment-local eviction; \
         transitions/s stays ~flat on one core: {:.2}x)",
        speedup(4),
        rows.iter().find(|r| r.shards == 4).unwrap().trans_per_s
            / rows.iter().find(|r| r.shards == 1).unwrap().trans_per_s
    );
    if !smoke {
        assert!(
            speedup(4) >= 2.5,
            "4-shard serve loop must be >=2.5x the 1-shard feeder, got {:.2}x",
            speedup(4)
        );
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"shards\": {}, \"rpcs\": {}, \"grants\": {}, \"serve_wall_s\": {:.4}, \
                 \"rpcs_per_s\": {:.0}, \"transitions\": {}, \"trans_wall_s\": {:.4}, \
                 \"transitions_per_s\": {:.0}}}",
                r.shards,
                r.rpcs,
                r.grants,
                r.serve_wall_s,
                r.rpcs_per_s,
                r.transitions,
                r.trans_wall_s,
                r.trans_per_s
            )
        })
        .collect();
    println!(
        "\nBENCH_shard.json {{\"wus\": {}, \"feeder_slots\": {}, \"clients\": {}, \
         \"speedup_rpcs_4shard\": {:.2}, \"speedup_transitions_4shard\": {:.2}, \"rows\": [{}]}}",
        n_wus,
        feeder_slots,
        clients,
        speedup(4),
        rows.iter().find(|r| r.shards == 4).unwrap().trans_per_s
            / rows.iter().find(|r| r.shards == 1).unwrap().trans_per_s,
        json_rows.join(", ")
    );
}
