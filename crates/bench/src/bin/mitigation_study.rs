//! Ablation **A3**: the §IV.C mitigations for the slow-node problem.
//!
//! "Map work units should have priority … and be reported as soon as
//! their upload is completed"; "clients should be able to start
//! downloading as soon as files become available"; "this may be less
//! noticeable when using a larger number of jobs at the same time."
//!
//! Usage: `cargo run -p vmr-bench --release --bin mitigation_study`

use vmr_bench::{calibrated_sizing, report, run_or_exit};
use vmr_core::{ExperimentConfig, MitigationPlan, MrMode};

fn main() {
    let sizing = calibrated_sizing();
    let base = |seed| {
        let mut c = ExperimentConfig::table1(15, 15, 3, MrMode::InterClient);
        c.sizing = sizing;
        c.seed = seed;
        c
    };
    println!("# A3 — §IV.C mitigation study (15 nodes, 15 maps, 3 reduces, BOINC-MR)");
    println!(
        "{:<34} | {:>7} | {:>8} | {:>8} | {:>12}",
        "variant", "map s", "reduce s", "total s", "mean delay s"
    );

    let variants: Vec<(&str, MitigationPlan)> = vec![
        ("baseline (paper's behaviour)", MitigationPlan::default()),
        (
            "immediate report",
            MitigationPlan {
                immediate_report: true,
                ..Default::default()
            },
        ),
        (
            "intermediate downloads",
            MitigationPlan {
                intermediate_downloads: true,
                ..Default::default()
            },
        ),
        (
            "both",
            MitigationPlan {
                immediate_report: true,
                intermediate_downloads: true,
            },
        ),
    ];
    const SEEDS: [u64; 3] = [5, 6, 7];
    for (name, plan) in variants {
        let (mut tm, mut tr, mut tt, mut td) = (0.0, 0.0, 0.0, 0.0);
        for seed in SEEDS {
            let mut cfg = base(seed);
            cfg.mitigation = plan;
            let out = run_or_exit(&cfg);
            assert!(out.all_done, "{name} failed");
            tm += out.reports[0].map_s;
            tr += out.reports[0].reduce_s;
            tt += out.reports[0].total_s;
            td += report::report_delay(&out).mean;
        }
        let n = SEEDS.len() as f64;
        println!(
            "{:<34} | {:>7.0} | {:>8.0} | {:>8.0} | {:>12.1}",
            name,
            tm / n,
            tr / n,
            tt / n,
            td / n
        );
    }

    // "using a larger number of jobs at the same time": steady feed.
    println!("\n# multi-job steady feed (same geometry, J concurrent jobs; per-job mean)");
    for jobs in [1usize, 2, 4] {
        let mut cfg = base(42);
        cfg.concurrent_jobs = jobs;
        let out = run_or_exit(&cfg);
        assert!(out.all_done);
        let n = out.reports.len() as f64;
        let map: f64 = out.reports.iter().map(|r| r.map_s).sum::<f64>() / n;
        let total: f64 = out.reports.iter().map(|r| r.total_s).sum::<f64>() / n;
        let makespan = out.finished_at.as_secs_f64();
        println!(
            "J={jobs}: mean map {:>6.0} s, mean total {:>6.0} s, fleet makespan {:>7.0} s, report delay {} s",
            map,
            total,
            makespan,
            report::delay_cell(&report::report_delay(&out))
        );
    }
    println!(
        "\nShape: immediate reporting removes the report-delay tail; constant \
         work availability keeps clients out of deep backoff, so per-job \
         overhead shrinks as J grows."
    );
}
