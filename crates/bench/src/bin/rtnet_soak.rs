//! Threaded-vs-poll serving-runtime comparison (EXPERIMENTS.md A13).
//!
//! Drives the nonblocking load generator ([`vmr_rtnet::run_load`])
//! against both serving runtimes — the thread-per-connection
//! [`PeerServer`] (the §III.C executable spec) and the poll-loop
//! [`PollServer`] — over a ladder of concurrency levels, and prints a
//! side-by-side table: throughput, p50/p99/max latency, peak open
//! connections. Every leg re-checks the soak invariant (zero lost
//! requests) before its row is trusted.
//!
//! The whole run lives in one process, so the ladder tops out well
//! below the container's 20 000-fd ceiling (client + server sockets
//! both count); the two-process harness in `tests/soak_rtnet.rs` is
//! where the full 10 000-at-once cohort runs.
//!
//! Emits one machine-readable line, `BENCH_rtnet.json`, with the table.
//!
//! Usage: `cargo run -p vmr-bench --release --bin rtnet_soak`
//! (`--smoke` runs the two smallest rungs only).

use bytes::Bytes;
use std::sync::Arc;
use std::time::Duration;
use vmr_rtnet::{
    run_load, LoadConfig, LoadReport, OutputStore, PeerServer, PollServer, PollServerConfig,
};

const PAYLOAD: usize = 8 << 10;

fn make_store() -> Arc<OutputStore> {
    let store = Arc::new(OutputStore::new());
    store.put("blob", Bytes::from(vec![0x5au8; PAYLOAD]));
    store
}

fn load(n: usize) -> LoadConfig {
    let mut cfg = LoadConfig::concurrent(n, "blob");
    cfg.deadline = Duration::from_secs(120);
    cfg
}

/// One measured leg. Both runtimes must account for every request
/// (each terminates in a client-side bucket); only the poll runtime is
/// additionally required to *serve* them all — the thread-per-conn
/// server genuinely sheds connections at the top rungs, and that
/// collapse is the datum this table exists to show.
fn leg(runtime: &str, n: usize) -> LoadReport {
    let report = match runtime {
        "threaded" => {
            let srv = PeerServer::start(make_store(), n).expect("threaded server");
            let r = run_load(srv.addr(), &load(n)).expect("load run");
            srv.shutdown();
            r
        }
        _ => {
            let srv =
                PollServer::start(make_store(), PollServerConfig::new(n)).expect("poll server");
            let r = run_load(srv.addr(), &load(n)).expect("load run");
            srv.shutdown();
            r
        }
    };
    assert_eq!(
        report.completed() as usize,
        n,
        "{runtime}@{n}: zero lost requests"
    );
    if runtime == "poll" {
        assert_eq!(report.data as usize, n, "{runtime}@{n}: all served");
        assert_eq!(report.io_errors, 0, "{runtime}@{n}: no unexplained deaths");
    }
    report
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rungs: &[usize] = if smoke {
        &[64, 256]
    } else {
        &[64, 256, 1024, 4096]
    };

    eprintln!(
        "{:<10} {:>6}  {:>10}  {:>9}  {:>9}  {:>9}  {:>6}  {:>9}",
        "runtime", "conc", "req/s", "p50 ms", "p99 ms", "max ms", "peak", "served"
    );
    let mut rows = Vec::new();
    for &n in rungs {
        for runtime in ["threaded", "poll"] {
            let r = leg(runtime, n);
            let rps = r.data as f64 / r.elapsed.as_secs_f64().max(1e-9);
            eprintln!(
                "{:<10} {:>6}  {:>10.0}  {:>9.2}  {:>9.2}  {:>9.2}  {:>6}  {:>4}/{:<4}",
                runtime,
                n,
                rps,
                r.p50_us / 1e3,
                r.p99_us / 1e3,
                r.max_us / 1e3,
                r.peak_open,
                r.data,
                n,
            );
            rows.push(format!(
                "{{\"runtime\":\"{runtime}\",\"concurrency\":{n},\"served\":{},\
                 \"io_errors\":{},\"req_per_s\":{rps:.0},\
                 \"p50_us\":{:.0},\"p99_us\":{:.0},\"max_us\":{:.0},\"peak_open\":{}}}",
                r.data, r.io_errors, r.p50_us, r.p99_us, r.max_us, r.peak_open
            ));
        }
    }
    println!(
        "BENCH_rtnet.json {{\"payload_bytes\":{PAYLOAD},\"legs\":[{}]}}",
        rows.join(",")
    );
}
