//! Ablation **A7**: who should carry relayed transfers? (§III.D)
//!
//! "In a volunteer computing environment the server could work as a
//! relay node, but that would require all map output to be sent back to
//! the project servers, thus minimizing the advantages of having
//! inter-client communication. Another possibility would be to have a
//! client fulfill that role, thus creating a supernode-based P2P
//! network."
//!
//! All volunteers sit behind symmetric NATs (worst case: every peer
//! transfer must relay); we compare relaying through the server versus
//! through 2/4/8 promoted volunteer supernodes.
//!
//! Usage: `cargo run -p vmr-bench --release --bin supernode_relay`

use vmr_bench::calibrated_sizing;
use vmr_bench::run_or_exit;
use vmr_core::{ExperimentConfig, MrMode};
use vmr_netsim::{NatMix, NatType, TraversalPolicy};

fn main() {
    let sizing = calibrated_sizing();
    println!("# A7 — relay node selection under all-symmetric NATs (16 nodes, 12 maps, 4 reduces, 512 MB)");
    println!(
        "{:<22} | {:>8} | {:>9} | {:>14} | {:>7}",
        "relay", "total s", "reduce s", "GB to server", "relayed"
    );
    for supernodes in [0usize, 2, 4, 8] {
        let mut cfg = ExperimentConfig::table1(16, 12, 4, MrMode::InterClient);
        cfg.sizing = sizing;
        cfg.input_bytes = 512 << 20;
        cfg.nat_mix = Some(NatMix::new(vec![(NatType::Symmetric, 1.0)]));
        cfg.traversal = TraversalPolicy::default();
        cfg.supernode_relays = supernodes;
        cfg.seed = 0x5003 + supernodes as u64;
        let out = run_or_exit(&cfg);
        assert!(out.all_done);
        let label = if supernodes == 0 {
            "server (TURN)".to_string()
        } else {
            format!("{supernodes} supernodes")
        };
        println!(
            "{:<22} | {:>8.0} | {:>9.0} | {:>14.2} | {:>7}",
            label,
            out.reports[0].total_s,
            out.reports[0].reduce_s,
            out.stats.bytes_via_server / 1e9,
            out.stats.traversal.relay,
        );
    }
    println!(
        "\nShape: supernodes lift the relayed shuffle off the server uplink — \
         the server carries only inputs/outputs again — and spread relay \
         load across volunteer links, shortening the reduce phase. \
         (Supernodes are also directly reachable, so some transfers \
         stop needing a relay at all.)"
    );
}
