//! Ablation **A8**: volunteer availability (owner usage).
//!
//! The Emulab nodes of §IV.A are dedicated; real volunteers compute
//! only while their owners are away ("resources donated by ordinary
//! people"). This study degrades the duty cycle of every volunteer and
//! tracks how the makespan stretches — the gap between the paper's
//! cluster numbers and what an actual volunteer cloud would show.
//!
//! Usage: `cargo run -p vmr-bench --release --bin availability_study`

use vmr_bench::calibrated_sizing;
use vmr_bench::run_or_exit;
use vmr_core::{ExperimentConfig, MrMode};
use vmr_vcore::Availability;

fn main() {
    let sizing = calibrated_sizing();
    println!("# A8 — volunteer availability (15 nodes, 15 maps, 3 reduces, 1 GB, BOINC-MR)");
    println!(
        "{:<26} | {:>10} | {:>7} | {:>8} | {:>8}",
        "availability", "duty cycle", "map s", "reduce s", "total s"
    );
    let cases: Vec<(&str, Option<Availability>)> = vec![
        ("dedicated (Emulab)", None),
        (
            "on 50 min / off 10 min",
            Some(Availability {
                on_mean_s: 3000.0,
                off_mean_s: 600.0,
            }),
        ),
        (
            "on 20 min / off 20 min",
            Some(Availability {
                on_mean_s: 1200.0,
                off_mean_s: 1200.0,
            }),
        ),
        (
            "on 10 min / off 30 min",
            Some(Availability {
                on_mean_s: 600.0,
                off_mean_s: 1800.0,
            }),
        ),
    ];
    for (name, avail) in cases {
        let mut cfg = ExperimentConfig::table1(15, 15, 3, MrMode::InterClient);
        cfg.sizing = sizing;
        cfg.availability = avail;
        cfg.seed = 0xA8A8;
        let out = run_or_exit(&cfg);
        assert!(out.all_done, "{name} did not finish");
        let duty = avail.map(|a| a.duty_cycle()).unwrap_or(1.0);
        let r = &out.reports[0];
        println!(
            "{:<26} | {:>9.0}% | {:>7.0} | {:>8.0} | {:>8.0}",
            name,
            duty * 100.0,
            r.map_s,
            r.reduce_s,
            r.total_s
        );
    }
    println!(
        "\nShape: makespan grows super-linearly as duty cycle falls — the tail \
         task of each phase is increasingly likely to land on a suspended \
         volunteer, which is why replication/reassignment matter far more on \
         real volunteer clouds than on the paper's dedicated testbed."
    );
}
