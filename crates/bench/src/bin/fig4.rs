//! Regenerates the paper's **Fig. 4**: per-node map makespan for the
//! 15-node / 15-map-WU scenario (30 map results), exposing the
//! exponential-backoff straggler — "one node did not report the
//! completion of its tasks due to the backoff interval, and
//! consequently delayed the beginning of the reduce step."
//!
//! Usage: `cargo run -p vmr-bench --release --bin fig4`

use vmr_bench::calibrated_sizing;
use vmr_bench::run_or_exit;
use vmr_core::{ExperimentConfig, MrMode};
use vmr_desim::SimTime;

fn main() {
    let mut cfg = ExperimentConfig::table1(15, 15, 3, MrMode::ServerRelay);
    cfg.sizing = calibrated_sizing();
    cfg.record_timeline = true;
    // Seed chosen so a clear backoff straggler appears (several do).
    cfg.seed = 0xF164;
    let out = run_or_exit(&cfg);
    assert!(out.all_done);
    let r = &out.reports[0];

    println!("# Fig. 4 — map application makespan, 15 map WUs (30 results)");
    println!(
        "# map phase {:.0} s (without slowest node: {}), reduce {:.0} s, total {:.0} s\n",
        r.map_s,
        r.map_no_slowest_s
            .map(|v| format!("{v:.0} s"))
            .unwrap_or_else(|| "—".into()),
        r.reduce_s,
        r.total_s
    );

    // Per-node map completion vs report instants (the bar pairs of the
    // original figure).
    let reduce_start = out
        .timeline
        .points()
        .iter()
        .find(|p| p.detail == "reduce-start")
        .map(|p| p.at);
    println!(
        "{:<9} {:>12} {:>12} {:>12}   (report delayed by backoff → straggler)",
        "node", "exec done", "reported", "delay s"
    );
    let mut rows: Vec<(String, SimTime, SimTime)> = Vec::new();
    for actor in out.timeline.actors() {
        if !actor.starts_with("node-") {
            continue;
        }
        // Last map exec span end + last report point on this lane during
        // the map phase.
        let map_end = out
            .timeline
            .lane(&actor)
            .iter()
            .filter(|s| s.kind == "exec" || s.kind == "upload")
            .map(|s| s.end)
            .filter(|t| reduce_start.map(|rs| *t <= rs).unwrap_or(true))
            .max();
        let report = out
            .timeline
            .points()
            .iter()
            .filter(|p| p.actor == actor && p.kind == "report")
            .map(|p| p.at)
            .filter(|t| reduce_start.map(|rs| *t <= rs).unwrap_or(true))
            .max();
        if let (Some(e), Some(rep)) = (map_end, report) {
            rows.push((actor, e, rep));
        }
    }
    rows.sort_by_key(|(_, _, rep)| *rep);
    for (actor, done, rep) in &rows {
        let delay = rep.saturating_since(*done).as_secs_f64();
        let flag = if delay > 60.0 {
            "  ← backoff straggler"
        } else {
            ""
        };
        println!(
            "{actor:<9} {:>11.1}s {:>11.1}s {:>11.1}{flag}",
            done.as_secs_f64(),
            rep.as_secs_f64(),
            delay
        );
    }
    if let Some(rs) = reduce_start {
        println!("\nreduce phase began at {:.1} s", rs.as_secs_f64());
    }

    println!("\nper-node map-phase timeline (d=download e=exec u=upload):");
    print!("{}", out.timeline.render_ascii(110));
}
