//! Ablation **A2**: inter-client transfers vs server relay (§III.B,
//! Table I's BOINC vs BOINC-MR axis) across reducer counts — where does
//! the crossover sit, and how much server bandwidth does BOINC-MR save?
//!
//! Usage: `cargo run -p vmr-bench --release --bin interclient_ablation`

use vmr_bench::calibrated_sizing;
use vmr_bench::run_or_exit;
use vmr_core::{ExperimentConfig, MrMode};

fn main() {
    let sizing = calibrated_sizing();
    println!("# A2 — inter-client vs server relay (20 nodes, 20 maps, 1 GB)");
    println!(
        "{:>4} | {:>22} | {:>22} | {:>14} | {:>14}",
        "R", "BOINC red/total s", "BOINC-MR red/total s", "GB via server", "GB via server"
    );
    for n_reduces in [1usize, 2, 5, 10] {
        let run = |mode| {
            let mut cfg = ExperimentConfig::table1(20, 20, n_reduces, mode);
            cfg.sizing = sizing;
            cfg.seed = 77 + n_reduces as u64;
            let out = run_or_exit(&cfg);
            assert!(out.all_done);
            (
                out.reports[0].reduce_s,
                out.reports[0].total_s,
                out.stats.bytes_via_server / 1e9,
            )
        };
        let (rr, rt, rb) = run(MrMode::ServerRelay);
        let (pr, pt, pb) = run(MrMode::InterClient);
        println!(
            "{:>4} | {:>10.0} / {:>9.0} | {:>10.0} / {:>9.0} | {:>14.2} | {:>14.2}",
            n_reduces, rr, rt, pr, pt, rb, pb
        );
    }

    // The pure BOINC-MR data path (no fall-back copies on the server).
    println!("\n# same, with map outputs NOT returned to the server (hash-only reporting)");
    let mut cfg = ExperimentConfig::table1(20, 20, 5, MrMode::InterClient);
    cfg.sizing = sizing;
    cfg.seed = 99;
    let with_upload = run_or_exit(&cfg);
    let mut cfg2 = cfg.clone();
    cfg2.sizing = sizing;
    // map_outputs_to_server is a job-level knob; thread it via sizing…
    // (exposed through MrJobConfig in the library; the harness uses the
    // config directly:)
    let out2 = {
        use vmr_core::{MrJobConfig, MrPolicy};
        use vmr_netsim::HostLink;
        use vmr_vcore::{Engine, HostProfile, ProjectConfig};
        let mut eng = Engine::builder(cfg2.seed)
            .config(ProjectConfig::default())
            .clients((0..20).map(|_| {
                (
                    HostProfile::pc3001(),
                    HostLink::symmetric_mbit(100.0, 0.000_5),
                )
            }))
            .build();
        let mut jc = MrJobConfig::paper_wordcount(20, 5, MrMode::InterClient);
        jc.sizing = sizing;
        jc.map_outputs_to_server = false;
        let mut pol = MrPolicy::new();
        pol.submit_job(&mut eng, jc);
        eng.run_until(&mut pol, vmr_desim::SimTime::from_secs(180_000), |e| {
            e.db.all_wus_terminal()
        });
        let job = &pol.tracker.jobs[0];
        (
            job.map_time().unwrap_or(f64::NAN),
            job.total_time().unwrap_or(f64::NAN),
            eng.stats.bytes_via_server / 1e9,
        )
    };
    println!(
        "with upload    : map {:>5.0} s total {:>5.0} s, {:.2} GB via server",
        with_upload.reports[0].map_s,
        with_upload.reports[0].total_s,
        with_upload.stats.bytes_via_server / 1e9
    );
    println!(
        "hash-only maps : map {:>5.0} s total {:>5.0} s, {:.2} GB via server",
        out2.0, out2.1, out2.2
    );
    println!(
        "\nShape: BOINC-MR wins the reduce phase everywhere and its advantage \
         grows with R (the server uplink is the relay bottleneck); hash-only \
         reporting removes the map-output upload stream entirely."
    );
}
