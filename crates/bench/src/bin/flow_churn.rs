//! Flow-churn scaling benchmark for the netsim engines.
//!
//! Drives the shuffle-churn workload (see `vmr_bench::churn`) through
//! four rungs of the scaling ladder:
//!
//! * **40 hosts** (the paper's Emulab testbed) — incremental `Network`,
//!   the scan-everything `NaiveNetwork` reference, and the
//!   `AggregateNetwork` below its coalescing threshold; all three must
//!   agree bit-identically on makespan and delivered bytes.
//! * **2 000 hosts** — incremental vs aggregate (internet policy): the
//!   aggregate engine must hold the asserted makespan tolerance while
//!   delivering the events/s uplift the 100k legs depend on.
//! * **20 000 and 100 000 hosts** — aggregate only, on the
//!   Anderson-&-Fedak volunteer population (heavy-tailed access links,
//!   oversubscribed ISP tiers, shared backbone).
//!
//! Emits one machine-readable line, `BENCH_netsim.json`, with the full
//! scaling table.
//!
//! Usage: `cargo run -p vmr-bench --release --bin flow_churn`
//! (`--scale-smoke` runs only a quick 20k-host leg, for the
//! `NETSIM_SCALE_SMOKE=1` gate in `scripts/check.sh`).

use std::time::Instant;
use vmr_bench::churn::{
    churn_script, churn_topology, population_topology, run_churn, run_churn_engine, ChurnOutcome,
    ChurnSpec, FlowEngine,
};
use vmr_netsim::{AggregateNetwork, NaiveNetwork, Network, ScalePolicy, Topology};

struct Measured {
    outcome: ChurnOutcome,
    wall_s: f64,
}

fn measure<E: FlowEngine>(spec: &ChurnSpec) -> Measured {
    let topo = churn_topology(spec);
    let script = churn_script(spec);
    let t0 = Instant::now();
    let outcome = run_churn::<E>(topo, &script);
    Measured {
        outcome,
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

fn measure_aggregate(spec: &ChurnSpec, topo: Topology, policy: ScalePolicy) -> Measured {
    let script = churn_script(spec);
    let t0 = Instant::now();
    let outcome = run_churn_engine(
        AggregateNetwork::with_policy(topo, &vmr_obs::Obs::detached(), policy),
        &script,
    );
    Measured {
        outcome,
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

fn events_per_sec(m: &Measured) -> f64 {
    m.outcome.events as f64 / m.wall_s.max(1e-9)
}

fn report(name: &str, m: &Measured) {
    eprintln!(
        "{:<24} flows {:>7}  peak {:>6}  pools {:>5}  events {:>8}  wall {:>8.3} s  \
         {:>10.0} events/s  makespan {:>8.1} s",
        name,
        m.outcome.started,
        m.outcome.peak_concurrent,
        m.outcome.peak_aggregates,
        m.outcome.events,
        m.wall_s,
        events_per_sec(m),
        m.outcome.makespan.as_secs_f64(),
    );
}

/// The scale legs' engine policy: coalesce past 256 in-flight flows,
/// publish shares in ~1.5 % buckets.
fn internet_policy() -> ScalePolicy {
    ScalePolicy::internet()
}

fn scale_smoke() {
    // Quick 20k-host leg for the check.sh gate: one fetch per host, one
    // wave, Anderson-&-Fedak population.
    let spec = ChurnSpec {
        hosts: 20_000,
        fetches_per_host: 1,
        waves: 1,
        seed: 0x51AB,
    };
    eprintln!("scale smoke: 20k-host shuffle, aggregate engine…");
    let m = measure_aggregate(&spec, population_topology(&spec), internet_policy());
    report("20k-host aggregate", &m);
    assert_eq!(m.outcome.completed, m.outcome.started, "lost flows");
    // Peak pool occupancy depends on path collisions (random peer pairs
    // rarely share one), so assert regime entry, not pool membership.
    assert!(
        m.outcome.scale_regime,
        "scale leg never left the exact regime — threshold misconfigured?"
    );
    eprintln!("scale smoke OK");
}

fn main() {
    if std::env::args().any(|a| a == "--scale-smoke") {
        scale_smoke();
        return;
    }

    // The paper's Emulab testbed scale: ~40 machines, one shuffle wave of
    // 10 fetches per host → 400 concurrent flows.
    let small = ChurnSpec {
        hosts: 40,
        fetches_per_host: 10,
        waves: 2,
        seed: 0x51AB,
    };
    // Volunteer-cloud scale: three orders of magnitude more hosts than
    // the prototype was evaluated on.
    let large = ChurnSpec {
        hosts: 2000,
        fetches_per_host: 3,
        waves: 2,
        seed: 0x51AB,
    };
    // Internet scale, on the volunteer population model.
    let scale20k = ChurnSpec {
        hosts: 20_000,
        fetches_per_host: 2,
        waves: 1,
        seed: 0x51AB,
    };
    let scale100k = ChurnSpec {
        hosts: 100_000,
        fetches_per_host: 1,
        waves: 1,
        seed: 0x51AB,
    };

    eprintln!("40-host shuffle, incremental engine…");
    let small_inc = measure::<Network>(&small);
    eprintln!("40-host shuffle, reference engine…");
    let small_ref = measure::<NaiveNetwork>(&small);
    assert_eq!(
        small_inc.outcome.makespan, small_ref.outcome.makespan,
        "engines diverge"
    );
    assert_eq!(
        small_inc.outcome.bytes.to_bits(),
        small_ref.outcome.bytes.to_bits(),
        "engines diverge on delivered bytes"
    );
    eprintln!("40-host shuffle, aggregate engine (below threshold)…");
    // Raised threshold: the testbed-scale run must stay in the exact
    // regime and reproduce the incremental engine bit-identically.
    let small_agg = measure_aggregate(
        &small,
        churn_topology(&small),
        ScalePolicy {
            coalesce_threshold: 10_000,
            quantum_mantissa_bits: 6,
        },
    );
    assert_eq!(
        small_agg.outcome.makespan, small_inc.outcome.makespan,
        "aggregate engine diverges at testbed scale"
    );
    assert_eq!(
        small_agg.outcome.bytes.to_bits(),
        small_inc.outcome.bytes.to_bits(),
        "aggregate engine diverges on delivered bytes"
    );
    assert_eq!(small_agg.outcome.peak_aggregates, 0);

    eprintln!("2000-host shuffle, incremental engine…");
    let large_inc = measure::<Network>(&large);
    eprintln!("2000-host shuffle, aggregate engine…");
    let large_agg = measure_aggregate(&large, churn_topology(&large), internet_policy());
    assert_eq!(
        large_agg.outcome.completed, large_inc.outcome.completed,
        "aggregate engine lost flows at 2000 hosts"
    );
    let tolerance = large_agg.outcome.makespan.as_secs_f64()
        / large_inc.outcome.makespan.as_secs_f64().max(1e-9);
    // Two-sided band: min-share pool rates lower-bound the exact
    // max-min foreground rates (stretching fg completions), but that
    // same underestimate leaves background scavengers *more* leftover
    // than exact max-min would, so a bg-dominated tail can also finish
    // early.
    assert!(
        (0.75..=1.35).contains(&tolerance),
        "2000-host makespan tolerance violated: aggregate/exact = {tolerance}"
    );

    eprintln!("20k-host shuffle, aggregate engine (volunteer population)…");
    let scale20k_agg =
        measure_aggregate(&scale20k, population_topology(&scale20k), internet_policy());
    eprintln!("100k-host shuffle, aggregate engine (volunteer population)…");
    let scale100k_agg = measure_aggregate(
        &scale100k,
        population_topology(&scale100k),
        internet_policy(),
    );

    let speedup = small_ref.wall_s / small_inc.wall_s.max(1e-9);
    let agg_speedup = events_per_sec(&large_agg) / events_per_sec(&large_inc).max(1e-9);
    report("40-host incremental", &small_inc);
    report("40-host reference", &small_ref);
    report("40-host aggregate", &small_agg);
    report("2000-host incremental", &large_inc);
    report("2000-host aggregate", &large_agg);
    report("20k-host aggregate", &scale20k_agg);
    report("100k-host aggregate", &scale100k_agg);
    eprintln!(
        "speedup over reference at 40 hosts / {} peak flows: {:.1}x",
        small_inc.outcome.peak_concurrent, speedup
    );
    eprintln!(
        "aggregate-engine events/s uplift at 2000 hosts: {:.1}x (makespan ratio {:.4})",
        agg_speedup, tolerance
    );

    println!(
        "BENCH_netsim.json {{\"small_hosts\": {}, \"small_flows\": {}, \"small_peak_concurrent\": {}, \
         \"small_events\": {}, \"small_wall_s\": {:.4}, \"small_events_per_s\": {:.0}, \
         \"small_ref_wall_s\": {:.4}, \"small_ref_events_per_s\": {:.0}, \"speedup_vs_reference\": {:.2}, \
         \"small_agg_wall_s\": {:.4}, \"small_agg_events_per_s\": {:.0}, \"small_agg_bit_identical\": true, \
         \"large_hosts\": {}, \"large_flows\": {}, \"large_peak_concurrent\": {}, \
         \"large_events\": {}, \"large_wall_s\": {:.4}, \"large_events_per_s\": {:.0}, \
         \"large_makespan_s\": {:.1}, \
         \"large_agg_wall_s\": {:.4}, \"large_agg_events_per_s\": {:.0}, \"large_agg_makespan_s\": {:.1}, \
         \"large_agg_peak_aggregates\": {}, \"large_agg_speedup\": {:.1}, \"large_agg_makespan_ratio\": {:.4}, \
         \"scale20k_hosts\": {}, \"scale20k_flows\": {}, \"scale20k_events\": {}, \
         \"scale20k_wall_s\": {:.4}, \"scale20k_events_per_s\": {:.0}, \"scale20k_makespan_s\": {:.1}, \
         \"scale20k_peak_aggregates\": {}, \
         \"scale100k_hosts\": {}, \"scale100k_flows\": {}, \"scale100k_events\": {}, \
         \"scale100k_wall_s\": {:.4}, \"scale100k_events_per_s\": {:.0}, \"scale100k_makespan_s\": {:.1}, \
         \"scale100k_peak_aggregates\": {}}}",
        small.hosts,
        small_inc.outcome.started,
        small_inc.outcome.peak_concurrent,
        small_inc.outcome.events,
        small_inc.wall_s,
        events_per_sec(&small_inc),
        small_ref.wall_s,
        events_per_sec(&small_ref),
        speedup,
        small_agg.wall_s,
        events_per_sec(&small_agg),
        large.hosts,
        large_inc.outcome.started,
        large_inc.outcome.peak_concurrent,
        large_inc.outcome.events,
        large_inc.wall_s,
        events_per_sec(&large_inc),
        large_inc.outcome.makespan.as_secs_f64(),
        large_agg.wall_s,
        events_per_sec(&large_agg),
        large_agg.outcome.makespan.as_secs_f64(),
        large_agg.outcome.peak_aggregates,
        agg_speedup,
        tolerance,
        scale20k.hosts,
        scale20k_agg.outcome.started,
        scale20k_agg.outcome.events,
        scale20k_agg.wall_s,
        events_per_sec(&scale20k_agg),
        scale20k_agg.outcome.makespan.as_secs_f64(),
        scale20k_agg.outcome.peak_aggregates,
        scale100k.hosts,
        scale100k_agg.outcome.started,
        scale100k_agg.outcome.events,
        scale100k_agg.wall_s,
        events_per_sec(&scale100k_agg),
        scale100k_agg.outcome.makespan.as_secs_f64(),
        scale100k_agg.outcome.peak_aggregates,
    );
}
