//! Flow-churn scaling benchmark for the incremental netsim engine.
//!
//! Drives the shuffle-churn workload (see `vmr_bench::churn`) through
//! the incremental `Network` and the scan-everything `NaiveNetwork`
//! reference at the paper's testbed scale (40 hosts, ~400 concurrent
//! flows) and at volunteer-cloud scale (2000 hosts, thousands of
//! concurrent flows; incremental engine only — the reference is
//! quadratic and would dominate the run time).
//!
//! Emits one machine-readable line, `BENCH_netsim.json`, with events/sec
//! and wall-clock per configuration plus the measured speedup.
//!
//! Usage: `cargo run -p vmr-bench --release --bin flow_churn`

use std::time::Instant;
use vmr_bench::churn::{churn_script, churn_topology, run_churn, ChurnOutcome, ChurnSpec};
use vmr_netsim::{NaiveNetwork, Network};

struct Measured {
    outcome: ChurnOutcome,
    wall_s: f64,
}

fn measure<E: vmr_bench::churn::FlowEngine>(spec: &ChurnSpec) -> Measured {
    let topo = churn_topology(spec);
    let script = churn_script(spec);
    let t0 = Instant::now();
    let outcome = run_churn::<E>(topo, &script);
    Measured {
        outcome,
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

fn events_per_sec(m: &Measured) -> f64 {
    m.outcome.events as f64 / m.wall_s.max(1e-9)
}

fn main() {
    // The paper's Emulab testbed scale: ~40 machines, one shuffle wave of
    // 10 fetches per host → 400 concurrent flows.
    let small = ChurnSpec {
        hosts: 40,
        fetches_per_host: 10,
        waves: 2,
        seed: 0x51AB,
    };
    // Volunteer-cloud scale: three orders of magnitude more hosts than
    // the prototype was evaluated on.
    let large = ChurnSpec {
        hosts: 2000,
        fetches_per_host: 3,
        waves: 2,
        seed: 0x51AB,
    };

    eprintln!("40-host shuffle, incremental engine…");
    let small_inc = measure::<Network>(&small);
    eprintln!("40-host shuffle, reference engine…");
    let small_ref = measure::<NaiveNetwork>(&small);
    assert_eq!(
        small_inc.outcome.makespan, small_ref.outcome.makespan,
        "engines diverge"
    );
    assert_eq!(
        small_inc.outcome.bytes.to_bits(),
        small_ref.outcome.bytes.to_bits(),
        "engines diverge on delivered bytes"
    );
    eprintln!("2000-host shuffle, incremental engine…");
    let large_inc = measure::<Network>(&large);

    let speedup = small_ref.wall_s / small_inc.wall_s.max(1e-9);
    for (name, m) in [
        ("40-host incremental", &small_inc),
        ("40-host reference", &small_ref),
        ("2000-host incremental", &large_inc),
    ] {
        eprintln!(
            "{:<22} flows {:>6}  peak {:>5}  events {:>7}  wall {:>8.3} s  {:>10.0} events/s",
            name,
            m.outcome.started,
            m.outcome.peak_concurrent,
            m.outcome.events,
            m.wall_s,
            events_per_sec(m),
        );
    }
    eprintln!(
        "speedup over reference at 40 hosts / {} peak flows: {:.1}x",
        small_inc.outcome.peak_concurrent, speedup
    );

    println!(
        "BENCH_netsim.json {{\"small_hosts\": {}, \"small_flows\": {}, \"small_peak_concurrent\": {}, \
         \"small_events\": {}, \"small_wall_s\": {:.4}, \"small_events_per_s\": {:.0}, \
         \"small_ref_wall_s\": {:.4}, \"small_ref_events_per_s\": {:.0}, \"speedup_vs_reference\": {:.2}, \
         \"large_hosts\": {}, \"large_flows\": {}, \"large_peak_concurrent\": {}, \
         \"large_events\": {}, \"large_wall_s\": {:.4}, \"large_events_per_s\": {:.0}, \
         \"large_makespan_s\": {:.1}}}",
        small.hosts,
        small_inc.outcome.started,
        small_inc.outcome.peak_concurrent,
        small_inc.outcome.events,
        small_inc.wall_s,
        events_per_sec(&small_inc),
        small_ref.wall_s,
        events_per_sec(&small_ref),
        speedup,
        large.hosts,
        large_inc.outcome.started,
        large_inc.outcome.peak_concurrent,
        large_inc.outcome.events,
        large_inc.wall_s,
        events_per_sec(&large_inc),
        large_inc.outcome.makespan.as_secs_f64(),
    );
}
