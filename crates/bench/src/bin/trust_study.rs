//! Ablation **A10**: adaptive replication driven by host reputation
//! (`vmr-trust`) vs the paper's fixed-quorum validation.
//!
//! Cost axis: fixed 2-way replication doubles every WU's compute.
//! Benefit axis: replication is what catches wrong results. The trust
//! subsystem buys back most of the redundancy on honest-majority
//! populations (hosts graduate to single replicas after probation,
//! audited by randomized spot-checks) — this study measures what that
//! costs in *error escapes* under adversarial populations: colluding
//! cliques, flaky-then-reliable hosts, and trust-poisoning sleepers.
//!
//! Each leg runs a plain work-unit population to completion and
//! reports redundant compute (successful reports per validated WU) and
//! the error-escape rate (validated WUs whose canonical fingerprint is
//! not the honest one). Emits one machine-readable line,
//! `BENCH_trust.json`, with every row plus the headline reduction.
//!
//! Usage: `cargo run -p vmr-bench --release --bin trust_study`
//! (`--smoke` runs the 40-host legs only).

use std::time::Instant;
use vmr_desim::{SimDuration, SimTime};
use vmr_netsim::HostLink;
use vmr_vcore::{
    honest_fingerprint, Engine, FaultPlan, HostProfile, NullPolicy, ProjectConfig, TrustConfig,
    WorkUnitSpec, WuId, WuState,
};

/// Tasks per host (before replication) — enough post-probation volume
/// that adaptive replication can amortize the 2-way probation phase.
const TASKS_PER_HOST: u32 = 25;

/// Estimator knobs used for every trust-enabled leg.
fn trust_cfg() -> TrustConfig {
    let mut t = TrustConfig::enabled();
    t.probation_results = 3;
    t.spot_check_rate = 0.05;
    t
}

struct Scenario {
    name: &'static str,
    plan: fn(u32) -> FaultPlan,
}

/// Adversarial population schedules, parameterized by host count. The
/// per-host load is scale-invariant (makespan ≈ 200 s of sim-time at
/// every host count), so the flip/wake times below sit mid-run: flaky
/// hosts turn reliable with time left to re-earn trust, and sleepers
/// defect *after* the ledger has graduated them to single replicas.
const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "honest",
        plan: |_| FaultPlan::none(),
    },
    Scenario {
        name: "clique",
        plan: |n| FaultPlan::colluding_clique(n, 0.10, 7, 101),
    },
    Scenario {
        name: "flaky",
        plan: |n| FaultPlan::flaky_then_reliable(n, 0.10, 0.5, SimDuration::from_secs(60), 202),
    },
    Scenario {
        name: "poison",
        plan: |n| FaultPlan::trust_poisoning(n, 0.05, 1.0, SimDuration::from_secs(100), 303),
    },
];

struct Row {
    hosts: u32,
    scenario: &'static str,
    mode: &'static str,
    wus: u32,
    validated: u32,
    escapes: u32,
    reports: u64,
    redundancy: f64,
    trusted: u64,
    spot_checks: u64,
    saved: u64,
    makespan_s: f64,
    wall_s: f64,
}

fn run_leg(hosts: u32, scenario: &Scenario, trust: TrustConfig, mode: &'static str) -> Row {
    let wall = Instant::now();
    let cfg = ProjectConfig {
        trust,
        ..ProjectConfig::default()
    };
    let mut eng = Engine::builder(9000 + hosts as u64)
        .config(cfg)
        .clients((0..hosts).map(|_| {
            (
                HostProfile::pc3001(),
                HostLink::symmetric_mbit(100.0, 0.000_5),
            )
        }))
        .build();
    let wus = hosts * TASKS_PER_HOST;
    for i in 0..wus {
        let mut spec = WorkUnitSpec::basic(format!("w{i}"), "app", 2e9);
        spec.target_nresults = 2;
        spec.min_quorum = 2;
        eng.insert_workunit(spec);
    }
    eng.fault = (scenario.plan)(hosts);

    let mut pol = NullPolicy;
    eng.run_until(&mut pol, SimTime::from_secs(500_000), |e| {
        e.db.all_wus_terminal()
    });

    let mut validated = 0u32;
    let mut escapes = 0u32;
    for i in 0..wus {
        let w = eng.db.wu(WuId(i));
        if w.state != WuState::Validated {
            continue;
        }
        validated += 1;
        if w.canonical != Some(honest_fingerprint(&w.spec.name)) {
            escapes += 1;
        }
    }
    Row {
        hosts,
        scenario: scenario.name,
        mode,
        wus,
        validated,
        escapes,
        reports: eng.stats.reports,
        redundancy: eng.stats.reports as f64 / validated.max(1) as f64,
        trusted: eng.trust.trusted_count(),
        spot_checks: eng.obs.counter("trust.spot_checks").get(),
        saved: eng.obs.counter("trust.replication_saved").get(),
        makespan_s: eng.now().as_secs_f64(),
        wall_s: wall.elapsed().as_secs_f64(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host_counts: &[u32] = if smoke { &[40] } else { &[40, 2000] };

    println!("# A10 — adaptive replication vs fixed quorum ({TASKS_PER_HOST} tasks/host)");
    println!(
        "{:>6} | {:>8} | {:>8} | {:>6} | {:>9} | {:>10} | {:>8} | {:>7} | {:>6} | {:>9} | {:>7}",
        "hosts",
        "scenario",
        "mode",
        "wus",
        "validated",
        "redundancy",
        "escapes",
        "trusted",
        "spot",
        "sim s",
        "wall s"
    );

    let mut rows: Vec<Row> = Vec::new();
    for &hosts in host_counts {
        for sc in SCENARIOS {
            for (mode, trust) in [("fixed", TrustConfig::default()), ("trust", trust_cfg())] {
                let r = run_leg(hosts, sc, trust, mode);
                println!(
                    "{:>6} | {:>8} | {:>8} | {:>6} | {:>9} | {:>10.3} | {:>8} | {:>7} | {:>6} | {:>9.1} | {:>7.2}",
                    r.hosts,
                    r.scenario,
                    r.mode,
                    r.wus,
                    r.validated,
                    r.redundancy,
                    r.escapes,
                    r.trusted,
                    r.spot_checks,
                    r.makespan_s,
                    r.wall_s
                );
                rows.push(r);
            }
        }
    }

    // Headline: redundant-compute reduction under honest majority, per
    // host count (trust vs fixed-quorum baseline).
    let reduction = |hosts: u32| -> f64 {
        let get = |mode: &str| {
            rows.iter()
                .find(|r| r.hosts == hosts && r.scenario == "honest" && r.mode == mode)
                .map(|r| r.redundancy)
                .unwrap_or(f64::NAN)
        };
        1.0 - get("trust") / get("fixed")
    };

    for &hosts in host_counts {
        // Sanity that the subsystem is live, at every scale.
        let t = rows
            .iter()
            .find(|r| r.hosts == hosts && r.scenario == "honest" && r.mode == "trust")
            .unwrap();
        assert!(t.trusted > 0, "no host earned trust at {hosts} hosts");
        assert!(t.saved > 0, "no replica was saved at {hosts} hosts");
        assert_eq!(t.escapes, 0, "honest population must not escape");
        println!(
            "\nhonest-majority redundant-compute reduction at {hosts} hosts: {:.1}%",
            100.0 * reduction(hosts)
        );
    }
    if !smoke {
        assert!(
            reduction(2000) >= 0.40,
            "adaptive replication must cut >=40% of redundant compute at 2000 hosts"
        );
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"hosts\": {}, \"scenario\": \"{}\", \"mode\": \"{}\", \"wus\": {}, \
                 \"validated\": {}, \"escapes\": {}, \"escape_rate\": {:.5}, \"reports\": {}, \
                 \"redundancy\": {:.4}, \"trusted\": {}, \"spot_checks\": {}, \
                 \"replication_saved\": {}, \"makespan_s\": {:.1}, \"wall_s\": {:.4}}}",
                r.hosts,
                r.scenario,
                r.mode,
                r.wus,
                r.validated,
                r.escapes,
                r.escapes as f64 / r.validated.max(1) as f64,
                r.reports,
                r.redundancy,
                r.trusted,
                r.spot_checks,
                r.saved,
                r.makespan_s,
                r.wall_s
            )
        })
        .collect();
    let headline: Vec<String> = host_counts
        .iter()
        .map(|&h| format!("\"reduction_{h}_honest\": {:.4}", reduction(h)))
        .collect();
    println!(
        "\nBENCH_trust.json {{{}, \"rows\": [{}]}}",
        headline.join(", "),
        json_rows.join(", ")
    );

    println!(
        "\nShape: under honest majority the ledger graduates nearly every \
         host past probation and most WUs run singly (randomly spot-checked), \
         recovering close to half the baseline's redundant compute; colluding \
         cliques still beat *both* validators whenever a quorum lands entirely \
         inside the clique; flaky-then-reliable hosts pay their history until \
         decay re-earns trust; trust-poisoning sleepers are the price of \
         adaptivity — their post-wake escapes pass unreplicated until a \
         spot-check revokes trust."
    );
}
