//! Ablation **A1**: sweep the exponential-backoff cap (§IV.B).
//!
//! The paper identifies the 600 s cap as the source of both the in-phase
//! straggler and the map→reduce transition gap. This sweep quantifies
//! that: total makespan and mean report delay versus the cap.
//!
//! Usage: `cargo run -p vmr-bench --release --bin backoff_sweep`

use vmr_bench::{calibrated_sizing, report, run_or_exit};
use vmr_core::{ExperimentConfig, MrMode};

fn main() {
    let sizing = calibrated_sizing();
    println!("# A1 — backoff cap sweep (20 nodes, 20 maps, 5 reduces, BOINC mode)");
    println!(
        "{:>9} | {:>8} | {:>8} | {:>8} | {:>12} | {:>9} | {:>9}",
        "cap s", "map s", "reduce s", "total s", "mean delay s", "p95 s", "empties"
    );
    for cap in [60u64, 120, 300, 600, 1200, 2400] {
        // Average over three seeds to smooth jitter.
        let mut tm = 0.0;
        let mut tr = 0.0;
        let mut tt = 0.0;
        let mut delay = 0.0;
        let mut p95 = 0.0f64;
        let mut empties = 0u64;
        const SEEDS: [u64; 3] = [11, 22, 33];
        for seed in SEEDS {
            let mut cfg = ExperimentConfig::table1(20, 20, 5, MrMode::ServerRelay);
            cfg.sizing = sizing;
            cfg.backoff_max_s = cap;
            cfg.seed = seed;
            let out = run_or_exit(&cfg);
            assert!(out.all_done);
            let r = &out.reports[0];
            tm += r.map_s;
            tr += r.reduce_s;
            tt += r.total_s;
            let d = report::report_delay(&out);
            delay += d.mean;
            p95 = p95.max(d.p95);
            empties += out.stats.empty_replies;
        }
        let n = SEEDS.len() as f64;
        println!(
            "{:>9} | {:>8.0} | {:>8.0} | {:>8.0} | {:>12.1} | {:>9.0} | {:>9}",
            cap,
            tm / n,
            tr / n,
            tt / n,
            delay / n,
            p95,
            empties / SEEDS.len() as u64
        );
    }
    println!(
        "\nShape: larger caps inflate the report delay and the phase-transition \
         gap; small caps trade that for more scheduler traffic (empties)."
    );
}
