//! Regenerates the paper's **Table I** (word-count makespans).
//!
//! Usage: `cargo run -p vmr-bench --release --bin table1`
//!
//! Prints, for every row, the simulated map/reduce/total times with the
//! "slowest node discarded" derivation in brackets, next to the paper's
//! published values.

use vmr_bench::{calibrated_sizing, row_config, table1_rows};
use vmr_core::{format_row, run_experiment};

fn main() {
    let mixed = std::env::args().any(|a| a == "--mixed");
    let sizing = calibrated_sizing();
    println!("# Table I — word count makespan (1 GB input, replication 2, quorum 2, 100 Mbit)");
    if mixed {
        println!("# node fleet: half pc3001, half quad-core pcr200 (--mixed)");
    }
    println!(
        "# sizing calibrated on real word count: expansion={:.3}, final output={} KiB",
        sizing.expansion,
        sizing.reduce_output_total_bytes >> 10
    );
    println!(
        "{:>5} | {:>5} | {:>4} | {:^12} | {:^12} | {:^12} || {:^22}",
        "Nodes", "Map", "Red", "Map Time", "Reduce Time", "Total Time", "paper (map/red/total)"
    );
    println!("{}", "-".repeat(104));
    let mut prev_mode = None;
    for row in table1_rows() {
        if prev_mode != Some(row.mode) {
            println!("--- {} ---", row.mode);
            prev_mode = Some(row.mode);
        }
        let mut cfg = row_config(&row, sizing);
        if mixed {
            // §IV.A used two node types; split the fleet half/half.
            cfg.nodes = vmr_core::NodeMix {
                pc3001: row.nodes / 2,
                pcr200: row.nodes - row.nodes / 2,
            };
        }
        let out = run_experiment(&cfg);
        assert!(out.all_done, "row did not complete");
        let r = &out.reports[0];
        let paper = |p: (f64, Option<f64>)| match p.1 {
            Some(d) => format!("{:.0}[{:.0}]", p.0, d),
            None => format!("{:.0}", p.0),
        };
        println!(
            "{} || {} / {} / {}",
            format_row(row.nodes, row.n_maps, row.n_reduces, r),
            paper(row.paper_map),
            paper(row.paper_reduce),
            paper(row.paper_total),
        );
    }
}
