//! Regenerates the paper's **Table I** (word-count makespans).
//!
//! Usage: `cargo run -p vmr-bench --release --bin table1 \
//!     [--mixed] [--quick] [--durable] [--shards <n>] [--metrics <path>] \
//!     [--shuffle <baseline|legacy|swarm|coded>]`
//!
//! Prints, for every row, the simulated map/reduce/total times with the
//! "slowest node discarded" derivation in brackets, next to the paper's
//! published values.
//!
//! `--quick` runs only the first row of each scheduling mode (the
//! check.sh bench smoke). `--durable` journals every row's server
//! state (WAL + 300 s snapshots) and prints a `# wal:` footer — the
//! numbers themselves must not move. `--shards <n>` runs every row on
//! an n-way sharded server core; output is byte-identical to
//! `--shards 1` by construction (the check.sh shard smoke diffs the
//! two). `--metrics <path>` additionally
//! dumps every row's obs metrics snapshot to `path` as a JSON array;
//! stdout is unchanged by it. `--shuffle legacy` runs the preserved
//! pre-extraction transfer path (the check.sh shuffle smoke diffs it
//! against the default, strategy-driven baseline).

use vmr_bench::{calibrated_sizing, row_config, run_or_exit, table1_rows};
use vmr_core::{format_row, MrMode};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mixed = args.iter().any(|a| a == "--mixed");
    let quick = args.iter().any(|a| a == "--quick");
    let durable = args.iter().any(|a| a == "--durable");
    let metrics_path = args
        .iter()
        .position(|a| a == "--metrics")
        .map(|i| args.get(i + 1).expect("--metrics needs a path").clone());
    let shards: usize = args
        .iter()
        .position(|a| a == "--shards")
        .map(|i| {
            args.get(i + 1)
                .expect("--shards needs a count")
                .parse()
                .expect("--shards takes an integer")
        })
        .unwrap_or(1);
    let shuffle = args
        .iter()
        .position(|a| a == "--shuffle")
        .map(|i| {
            let name = args.get(i + 1).expect("--shuffle needs a strategy");
            match name.as_str() {
                "baseline" => vmr_core::ShuffleConfig::default(),
                "legacy" => vmr_core::ShuffleConfig::legacy_reference(),
                "swarm" => vmr_core::ShuffleConfig::swarm(),
                "coded" => vmr_core::ShuffleConfig::coded(2),
                other => panic!("unknown --shuffle strategy: {other}"),
            }
        })
        .unwrap_or_default();
    let sizing = calibrated_sizing();
    println!("# Table I — word count makespan (1 GB input, replication 2, quorum 2, 100 Mbit)");
    if mixed {
        println!("# node fleet: half pc3001, half quad-core pcr200 (--mixed)");
    }
    println!(
        "# sizing calibrated on real word count: expansion={:.3}, final output={} KiB",
        sizing.expansion,
        sizing.reduce_output_total_bytes >> 10
    );
    println!(
        "{:>5} | {:>5} | {:>4} | {:^12} | {:^12} | {:^12} || {:^22}",
        "Nodes", "Map", "Red", "Map Time", "Reduce Time", "Total Time", "paper (map/red/total)"
    );
    println!("{}", "-".repeat(104));
    let rows = if quick {
        // One row per scheduling mode: the smallest ServerRelay
        // geometry plus the InterClient row.
        let all = table1_rows();
        let mut picked = Vec::new();
        for mode in [MrMode::ServerRelay, MrMode::InterClient] {
            if let Some(r) = all.iter().find(|r| r.mode == mode) {
                picked.push(*r);
            }
        }
        println!(
            "# quick subset (--quick): {} of {} rows",
            picked.len(),
            all.len()
        );
        picked
    } else {
        table1_rows()
    };
    let mut row_metrics: Vec<String> = Vec::new();
    let mut prev_mode = None;
    for row in rows {
        if prev_mode != Some(row.mode) {
            println!("--- {} ---", row.mode);
            prev_mode = Some(row.mode);
        }
        let mut cfg = row_config(&row, sizing);
        cfg.shards = shards;
        cfg.shuffle = shuffle.clone();
        if durable {
            cfg.durable = vmr_durable::DurabilityPlan::new(300.0);
        }
        if mixed {
            // §IV.A used two node types; split the fleet half/half.
            cfg.nodes = vmr_core::NodeMix {
                pc3001: row.nodes / 2,
                pcr200: row.nodes - row.nodes / 2,
            };
        }
        let out = run_or_exit(&cfg);
        assert!(out.all_done, "row did not complete");
        if let Some(wal) = &out.wal {
            let snap = out.obs.snapshot();
            println!(
                "# wal: {} records, {} KiB, {} snapshots",
                snap.counter("dur.wal_records"),
                wal.len() >> 10,
                snap.histogram("dur.snapshot_us").count,
            );
        }
        if metrics_path.is_some() {
            row_metrics.push(format!(
                "{{\"nodes\":{},\"n_maps\":{},\"n_reduces\":{},\"mode\":\"{}\",\"metrics\":{}}}",
                row.nodes,
                row.n_maps,
                row.n_reduces,
                row.mode,
                out.obs.to_json()
            ));
        }
        let r = &out.reports[0];
        let paper = |p: (f64, Option<f64>)| match p.1 {
            Some(d) => format!("{:.0}[{:.0}]", p.0, d),
            None => format!("{:.0}", p.0),
        };
        println!(
            "{} || {} / {} / {}",
            format_row(row.nodes, row.n_maps, row.n_reduces, r),
            paper(row.paper_map),
            paper(row.paper_reduce),
            paper(row.paper_total),
        );
    }
    if let Some(path) = metrics_path {
        std::fs::write(&path, format!("[{}]\n", row_metrics.join(",")))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    }
}
