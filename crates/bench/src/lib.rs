//! Shared definitions for the benchmark harness: the paper's Table I
//! row list with its published values, sizing calibration helpers, and
//! the flow-churn workload for the netsim engine benchmarks.

pub mod churn;
pub mod report;

use vmr_core::{ExperimentConfig, ExperimentOutcome, MrMode, SizingModel};
use vmr_mapreduce::apps::WordCount;
use vmr_mapreduce::{CorpusGen, CorpusSpec};

/// One row of the paper's Table I.
#[derive(Clone, Copy, Debug)]
pub struct Table1Row {
    /// Volunteer nodes.
    pub nodes: usize,
    /// Map work units.
    pub n_maps: usize,
    /// Reduce work units.
    pub n_reduces: usize,
    /// BOINC (server relay) or BOINC-MR (inter-client).
    pub mode: MrMode,
    /// Paper's published map time `(value, discarded-slowest)`.
    pub paper_map: (f64, Option<f64>),
    /// Paper's published reduce time.
    pub paper_reduce: (f64, Option<f64>),
    /// Paper's published total time.
    pub paper_total: (f64, Option<f64>),
}

/// Runs an experiment for a benchmark binary: invalid configurations
/// and WAL-sink failures print a one-line error and exit nonzero
/// instead of unwinding with a backtrace.
pub fn run_or_exit(cfg: &ExperimentConfig) -> ExperimentOutcome {
    vmr_core::run_experiment(cfg).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    })
}

/// The nine measured rows of Table I (the 10-node/1-WU row is blank in
/// the paper and is skipped).
pub fn table1_rows() -> Vec<Table1Row> {
    use MrMode::*;
    let r = |nodes,
             n_maps,
             n_reduces,
             mode,
             paper_map: (f64, Option<f64>),
             paper_reduce: (f64, Option<f64>),
             paper_total: (f64, Option<f64>)| Table1Row {
        nodes,
        n_maps,
        n_reduces,
        mode,
        paper_map,
        paper_reduce,
        paper_total,
    };
    vec![
        r(
            10,
            10,
            2,
            ServerRelay,
            (484.0, None),
            (337.0, None),
            (1121.0, None),
        ),
        r(
            10,
            20,
            2,
            ServerRelay,
            (376.0, None),
            (349.0, None),
            (1133.0, None),
        ),
        r(
            15,
            15,
            3,
            ServerRelay,
            (747.0, Some(396.0)),
            (604.0, Some(312.0)),
            (1529.0, Some(1011.0)),
        ),
        r(
            15,
            30,
            3,
            ServerRelay,
            (983.0, Some(364.0)),
            (322.0, None),
            (1378.0, Some(758.0)),
        ),
        r(
            20,
            20,
            5,
            ServerRelay,
            (383.0, None),
            (455.0, Some(341.0)),
            (1111.0, Some(997.0)),
        ),
        r(
            20,
            40,
            5,
            ServerRelay,
            (649.0, Some(360.0)),
            (700.0, Some(391.0)),
            (1681.0, Some(1083.0)),
        ),
        r(
            30,
            30,
            7,
            ServerRelay,
            (716.0, Some(373.0)),
            (345.0, None),
            (1373.0, Some(1030.0)),
        ),
        r(
            30,
            40,
            5,
            ServerRelay,
            (368.0, None),
            (399.0, None),
            (1174.0, None),
        ),
        r(
            20,
            20,
            5,
            InterClient,
            (612.0, None),
            (318.0, None),
            (1216.0, None),
        ),
    ]
}

/// Builds the experiment config for one Table I row, with the sizing
/// model calibrated against the real word-count app on a corpus sample.
pub fn row_config(row: &Table1Row, sizing: SizingModel) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::table1(row.nodes, row.n_maps, row.n_reduces, row.mode);
    cfg.sizing = sizing;
    // Seed folds in the row geometry so every row is an independent
    // (but reproducible) sample, like the paper's separate runs.
    cfg.seed = 0xB01C_0000
        ^ ((row.nodes as u64) << 24)
        ^ ((row.n_maps as u64) << 12)
        ^ (row.n_reduces as u64)
        ^ ((matches!(row.mode, MrMode::InterClient) as u64) << 40);
    cfg
}

/// Calibrates the sizing model once, against the real application on a
/// 2 MB sample of the same synthetic corpus the examples use.
pub fn calibrated_sizing() -> SizingModel {
    let mut gen = CorpusGen::new(&CorpusSpec::default());
    let sample = gen.generate(2 << 20);
    SizingModel::calibrate(&WordCount, &sample)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_rows_matching_paper() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 9);
        assert!(matches!(rows[8].mode, MrMode::InterClient));
        assert_eq!(rows[0].paper_total.0, 1121.0);
    }

    #[test]
    fn row_seeds_are_distinct() {
        let s = calibrated_sizing();
        let rows = table1_rows();
        let mut seeds: Vec<u64> = rows.iter().map(|r| row_config(r, s).seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), rows.len());
    }

    #[test]
    fn calibration_is_wordcount_like() {
        let s = calibrated_sizing();
        assert!(s.expansion > 1.0 && s.expansion < 1.8, "{}", s.expansion);
    }
}
