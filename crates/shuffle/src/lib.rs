//! Pluggable map-output distribution (`vmr-shuffle`).
//!
//! The paper moves every map output to its reducer by point-to-point
//! pull with a server fallback after `n` failed attempts (§IV). That
//! shuffle is the dominant traffic phase, and two lines of related work
//! suggest cheaper shapes: *Coded MapReduce* (Li et al.) trades
//! redundant map placement for multicast-coded shuffle traffic, and
//! Soelistio's torrent-like distribution swarms chunked transfers
//! across volunteers instead of hammering a single uplink.
//!
//! This crate owns the *decisions* of the shuffle — where map outputs
//! are placed and how a reducer's input fetch is planned — behind the
//! [`ShuffleStrategy`] trait:
//!
//! - [`Baseline`] — the paper's transfer path: whole-file pull from one
//!   validated holder per attempt, server fallback after
//!   `peer_retry_limit` failures. Decision-for-decision identical to
//!   the pre-strategy monolith (proven bit-identical by proptest).
//! - [`SwarmStrategy`] — map outputs split into fixed-size chunks,
//!   fetched from multiple sources at once with rarest-first piece
//!   selection, per-source concurrency caps and the server as seeder
//!   of last resort. Completed chunks turn the downloader into a
//!   sibling seed for later reducers.
//! - [`CodedStrategy`] — repetition-coded placement at redundancy *r*:
//!   map workunits are replicated (and validated) on at least *r*
//!   hosts, reducers are grouped *r*-at-a-time, and each (map, group)
//!   pair is served by one coded send of `ceil(P/|group|)` bytes per
//!   member instead of `|group|` full partitions. With the default
//!   `r = 2` the redundancy is *free* — BOINC validation already runs
//!   every map twice — and shuffle bytes halve.
//!
//! The execution mechanics (flows, NAT traversal, fault draws, serving
//! windows) stay in `vmr-vcore`; this crate is a leaf below it, so
//! client ids travel as raw `u32` (the `ClientId` newtype lives
//! upstream). Swarm bookkeeping ([`SwarmTransfer`], [`SwarmIndex`]) is
//! deterministic by construction: vectors in event order, no map
//! iteration on any decision path.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use vmr_obs::{Counter, Obs};

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Which shuffle strategy a project runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum StrategyKind {
    /// Point-to-point pull + server fallback via the strategy layer.
    Baseline,
    /// Chunked multi-source fetch, rarest-first, server as last seeder.
    Swarm,
    /// Repetition-coded placement at redundancy `r`, grouped reducers.
    Coded,
    /// The pre-strategy monolithic transfer path, preserved verbatim as
    /// an executable spec. Only used by differential tests and the
    /// `SHUFFLE_SMOKE` byte-diff; behaves exactly like [`Baseline`].
    Legacy,
}

impl StrategyKind {
    /// Stable one-byte wire tag (WAL `MrShufflePlanned` records).
    pub fn wire_tag(self) -> u8 {
        match self {
            StrategyKind::Baseline => 0,
            StrategyKind::Swarm => 1,
            StrategyKind::Coded => 2,
            StrategyKind::Legacy => 3,
        }
    }

    /// Inverse of [`StrategyKind::wire_tag`].
    pub fn from_wire_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => StrategyKind::Baseline,
            1 => StrategyKind::Swarm,
            2 => StrategyKind::Coded,
            3 => StrategyKind::Legacy,
            _ => return None,
        })
    }

    /// Short lowercase label for tables and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::Baseline => "baseline",
            StrategyKind::Swarm => "swarm",
            StrategyKind::Coded => "coded",
            StrategyKind::Legacy => "legacy",
        }
    }
}

/// Shuffle tunables, embedded in the project configuration.
///
/// Defaults select [`StrategyKind::Baseline`], which is bit-identical
/// to an engine built before this subsystem existed.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShuffleConfig {
    /// Strategy in effect for every job of the project.
    pub strategy: StrategyKind,
    /// Swarm: fixed chunk size a map output is split into.
    pub chunk_bytes: u64,
    /// Swarm: max chunk flows in flight per transfer.
    pub max_parallel_chunks: u32,
    /// Swarm: max chunk flows in flight per (transfer, source) pair.
    pub per_source_chunks: u32,
    /// Swarm: failed attempts per chunk before the server seeds it.
    pub chunk_retry_limit: u32,
    /// Coded: placement redundancy `r` (reducer group size). Map
    /// replication and quorum are raised to at least `r`, so `r = 2`
    /// rides for free on the default 2-way validation.
    pub redundancy: u32,
}

impl Default for ShuffleConfig {
    fn default() -> Self {
        ShuffleConfig {
            strategy: StrategyKind::Baseline,
            chunk_bytes: 256 << 10,
            max_parallel_chunks: 4,
            per_source_chunks: 2,
            chunk_retry_limit: 3,
            redundancy: 2,
        }
    }
}

impl ShuffleConfig {
    /// Swarm distribution with the default chunk geometry.
    pub fn swarm() -> Self {
        ShuffleConfig {
            strategy: StrategyKind::Swarm,
            ..ShuffleConfig::default()
        }
    }

    /// Coded placement at redundancy `r`.
    pub fn coded(r: u32) -> Self {
        ShuffleConfig {
            strategy: StrategyKind::Coded,
            redundancy: r.max(1),
            ..ShuffleConfig::default()
        }
    }

    /// The preserved pre-strategy transfer path (differential tests).
    pub fn legacy_reference() -> Self {
        ShuffleConfig {
            strategy: StrategyKind::Legacy,
            ..ShuffleConfig::default()
        }
    }

    /// Builds the strategy object this configuration selects.
    pub fn build(&self) -> Box<dyn ShuffleStrategy + Send + Sync> {
        match self.strategy {
            StrategyKind::Baseline | StrategyKind::Legacy => Box::new(Baseline),
            StrategyKind::Swarm => Box::new(SwarmStrategy {
                chunk_bytes: self.chunk_bytes.max(1),
            }),
            StrategyKind::Coded => Box::new(CodedStrategy {
                redundancy: self.redundancy.max(1) as usize,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// The strategy trait
// ---------------------------------------------------------------------------

/// A planned reduce-input fetch for one (map, reduce) partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FetchPlan {
    /// Bytes the reducer must actually move for this partition.
    pub bytes: u64,
    /// Candidate sources in preference order (first = designated).
    pub sources: Vec<u32>,
}

/// Chunk geometry of one swarmed transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkPlan {
    /// Number of chunks (≥ 1; a zero-byte transfer is one 0-byte chunk).
    pub n_chunks: u32,
    /// Size of every chunk but possibly the last.
    pub chunk_bytes: u64,
    /// Total transfer size.
    pub total_bytes: u64,
}

impl ChunkPlan {
    /// Splits `total_bytes` into `chunk_bytes`-sized pieces.
    pub fn new(total_bytes: u64, chunk_bytes: u64) -> Self {
        let cb = chunk_bytes.max(1);
        let n = if total_bytes == 0 {
            1
        } else {
            total_bytes.div_ceil(cb)
        };
        ChunkPlan {
            n_chunks: n as u32,
            chunk_bytes: cb,
            total_bytes,
        }
    }

    /// Size of chunk `i` (the last chunk carries the remainder).
    pub fn chunk_len(&self, i: u32) -> u64 {
        debug_assert!(i < self.n_chunks);
        if i + 1 < self.n_chunks {
            self.chunk_bytes
        } else {
            self.total_bytes - self.chunk_bytes * (self.n_chunks as u64 - 1)
        }
    }
}

/// Owns map-output placement and reduce-input fetch planning.
///
/// Strategies make only *decisions*; all transfer mechanics (flow
/// creation, rng draws, serving accounting) live in the engine so the
/// Baseline strategy reproduces the pre-strategy path bit-for-bit.
pub trait ShuffleStrategy {
    /// Which strategy this is.
    fn kind(&self) -> StrategyKind;

    /// Map-phase placement: (replication, quorum) for map workunits,
    /// given the job's configured values. Coded raises both to `r`.
    fn map_placement(&self, replication: u32, quorum: u32) -> (u32, u32) {
        (replication, quorum)
    }

    /// Reducer group size for coded decoding (1 = no grouping).
    fn coding_group(&self, _n_reduces: usize) -> usize {
        1
    }

    /// Plans the fetch of map `m`'s partition for reduce `r`:
    /// `bytes` is the full partition size, `holders` the validated
    /// holders in tracker order.
    fn plan_fetch(
        &self,
        _m: usize,
        _r: usize,
        _n_reduces: usize,
        bytes: u64,
        holders: &[u32],
    ) -> FetchPlan {
        FetchPlan {
            bytes,
            sources: holders.to_vec(),
        }
    }

    /// Source index for whole-file pull attempt `attempts` by
    /// `requester` over `n_peers` candidates.
    fn pick_source(&self, n_peers: usize, attempts: u32, requester: u32) -> usize;

    /// Chunk geometry for a transfer, or `None` for one whole-file flow.
    fn chunking(&self, _bytes: u64) -> Option<ChunkPlan> {
        None
    }
}

/// The paper's point-to-point pull (see crate docs).
pub struct Baseline;

impl ShuffleStrategy for Baseline {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Baseline
    }

    /// The pre-strategy peer rotation: start at an offset derived from
    /// the requester so concurrent reducers spread over holders.
    fn pick_source(&self, n_peers: usize, attempts: u32, requester: u32) -> usize {
        (attempts as usize + requester as usize) % n_peers
    }
}

/// Torrent-like chunked distribution (see crate docs).
pub struct SwarmStrategy {
    /// Fixed chunk size.
    pub chunk_bytes: u64,
}

impl ShuffleStrategy for SwarmStrategy {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Swarm
    }

    fn pick_source(&self, n_peers: usize, attempts: u32, requester: u32) -> usize {
        (attempts as usize + requester as usize) % n_peers
    }

    fn chunking(&self, bytes: u64) -> Option<ChunkPlan> {
        Some(ChunkPlan::new(bytes, self.chunk_bytes))
    }
}

/// Repetition-coded placement (see crate docs).
pub struct CodedStrategy {
    /// Redundancy `r` = reducer group size.
    pub redundancy: usize,
}

impl CodedStrategy {
    /// Size of reduce group `j` (the last group may be short).
    fn group_len(&self, j: usize, n_reduces: usize) -> usize {
        let g = self.coding_group(n_reduces);
        (n_reduces - j * g).min(g)
    }
}

impl ShuffleStrategy for CodedStrategy {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Coded
    }

    /// Coded placement needs every map output validated on ≥ `r`
    /// hosts, so replication and quorum are raised to `r`. With the
    /// paper's default (replication 2, quorum 2) and `r = 2` this is a
    /// no-op: validation redundancy is harvested for free.
    fn map_placement(&self, replication: u32, quorum: u32) -> (u32, u32) {
        let r = self.redundancy as u32;
        (replication.max(r), quorum.max(r))
    }

    fn coding_group(&self, n_reduces: usize) -> usize {
        self.redundancy.min(n_reduces).max(1)
    }

    /// Reduce `r` sits in group `j = r / g`; each member pulls a
    /// `ceil(P / |group|)` coded share, from a designated holder first
    /// (rotated over the holder set by map and member so one holder
    /// does not serve a whole group).
    fn plan_fetch(
        &self,
        m: usize,
        r: usize,
        n_reduces: usize,
        bytes: u64,
        holders: &[u32],
    ) -> FetchPlan {
        let g = self.coding_group(n_reduces);
        let j = r / g;
        let gs = self.group_len(j, n_reduces) as u64;
        let share = bytes.div_ceil(gs.max(1));
        let sources = if holders.is_empty() {
            Vec::new()
        } else {
            let start = (m + j + (r - j * g)) % holders.len();
            let mut v = Vec::with_capacity(holders.len());
            for k in 0..holders.len() {
                v.push(holders[(start + k) % holders.len()]);
            }
            v
        };
        FetchPlan {
            bytes: share,
            sources,
        }
    }

    /// Follow the planned order: the designated holder is first.
    fn pick_source(&self, n_peers: usize, attempts: u32, _requester: u32) -> usize {
        attempts as usize % n_peers
    }
}

/// Number of coded reduce groups for `n_reduces` at group size `g`.
pub fn coded_groups(n_reduces: usize, g: usize) -> usize {
    n_reduces.div_ceil(g.max(1))
}

// ---------------------------------------------------------------------------
// Swarm runtime bookkeeping
// ---------------------------------------------------------------------------

/// Per-chunk sibling seeds of swarmed files: reducers that completed a
/// chunk serve it to later reducers, spreading load off the holders.
#[derive(Debug, Default)]
pub struct SwarmIndex {
    files: HashMap<String, Vec<Vec<u32>>>,
}

impl SwarmIndex {
    /// Registers `cid` as a seed for `name`'s chunk `chunk`.
    pub fn add_seed(&mut self, name: &str, chunk: u32, n_chunks: u32, cid: u32) {
        let per = self
            .files
            .entry(name.to_string())
            .or_insert_with(|| vec![Vec::new(); n_chunks as usize]);
        let list = &mut per[chunk as usize];
        if !list.contains(&cid) {
            list.push(cid);
        }
    }

    /// Seeds of `name`'s chunk `chunk`, in registration order.
    pub fn seeds(&self, name: &str, chunk: u32) -> &[u32] {
        self.files
            .get(name)
            .and_then(|per| per.get(chunk as usize))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Drops all seed entries of one file (job finished serving it).
    pub fn drop_file(&mut self, name: &str) {
        self.files.remove(name);
    }

    /// Drops one client from every seed list (host dropped out).
    pub fn drop_client(&mut self, cid: u32) {
        for per in self.files.values_mut() {
            for list in per.iter_mut() {
                list.retain(|&c| c != cid);
            }
        }
    }
}

/// A source candidate for one swarm chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwarmSource {
    /// A reducer that already completed this chunk.
    Sibling(u32),
    /// A validated holder of the whole file.
    Holder(u32),
}

impl SwarmSource {
    /// The client id behind the source.
    pub fn cid(self) -> u32 {
        match self {
            SwarmSource::Sibling(c) | SwarmSource::Holder(c) => c,
        }
    }
}

/// State machine of one in-progress swarmed transfer.
#[derive(Debug)]
pub struct SwarmTransfer {
    /// File being fetched (keys the [`SwarmIndex`]).
    pub name: String,
    /// Validated holders in plan order.
    pub holders: Vec<u32>,
    /// Chunk geometry.
    pub plan: ChunkPlan,
    done: Vec<bool>,
    in_flight: Vec<bool>,
    attempts: Vec<u32>,
    per_source: HashMap<u32, u32>,
    inflight_total: u32,
    remaining: u32,
}

impl SwarmTransfer {
    /// Starts an empty transfer of `plan` chunks from `holders`.
    pub fn new(name: String, holders: Vec<u32>, plan: ChunkPlan) -> Self {
        let n = plan.n_chunks as usize;
        SwarmTransfer {
            name,
            holders,
            plan,
            done: vec![false; n],
            in_flight: vec![false; n],
            attempts: vec![0; n],
            per_source: HashMap::new(),
            inflight_total: 0,
            remaining: plan.n_chunks,
        }
    }

    /// Chunks not yet complete (in-flight ones included).
    pub fn remaining(&self) -> u32 {
        self.remaining
    }

    /// Chunk flows currently in flight.
    pub fn inflight(&self) -> u32 {
        self.inflight_total
    }

    /// Failed attempts recorded against chunk `chunk`.
    pub fn attempts(&self, chunk: u32) -> u32 {
        self.attempts[chunk as usize]
    }

    /// Records a failed attempt for `chunk`.
    pub fn bump_attempt(&mut self, chunk: u32) {
        self.attempts[chunk as usize] += 1;
    }

    /// Rarest-first piece selection: among chunks neither done nor in
    /// flight, pick the one with the fewest seeds in `index` (holders
    /// count for every chunk), breaking ties by chunk order.
    pub fn choose_chunk(&self, index: &SwarmIndex) -> Option<u32> {
        let mut best: Option<(usize, u32)> = None;
        for i in 0..self.plan.n_chunks {
            if self.done[i as usize] || self.in_flight[i as usize] {
                continue;
            }
            let avail = self.holders.len() + index.seeds(&self.name, i).len();
            if best.map(|(b, _)| avail < b).unwrap_or(true) {
                best = Some((avail, i));
            }
        }
        best.map(|(_, i)| i)
    }

    /// Source candidates for `chunk` in preference order: siblings
    /// first (they offload the holders), then holders rotated by
    /// `(chunk + requester + attempts)` so retries move on and
    /// concurrent reducers spread out.
    pub fn sources_for(&self, chunk: u32, index: &SwarmIndex, requester: u32) -> Vec<SwarmSource> {
        let mut v = Vec::with_capacity(self.holders.len() + 2);
        for &s in index.seeds(&self.name, chunk) {
            v.push(SwarmSource::Sibling(s));
        }
        if !self.holders.is_empty() {
            let start =
                (chunk as usize + requester as usize + self.attempts[chunk as usize] as usize)
                    % self.holders.len();
            for k in 0..self.holders.len() {
                v.push(SwarmSource::Holder(
                    self.holders[(start + k) % self.holders.len()],
                ));
            }
        }
        v
    }

    /// True while `source` is below the per-source in-flight cap.
    pub fn source_has_room(&self, source: u32, cap: u32) -> bool {
        self.per_source.get(&source).copied().unwrap_or(0) < cap
    }

    /// Marks `chunk` in flight from `source`.
    pub fn start(&mut self, chunk: u32, source: u32) {
        let i = chunk as usize;
        debug_assert!(!self.done[i] && !self.in_flight[i]);
        self.in_flight[i] = true;
        self.inflight_total += 1;
        *self.per_source.entry(source).or_insert(0) += 1;
    }

    /// Completes `chunk` from `source`; returns true when the whole
    /// transfer is done.
    pub fn complete(&mut self, chunk: u32, source: Option<u32>) -> bool {
        let i = chunk as usize;
        debug_assert!(self.in_flight[i] && !self.done[i]);
        self.in_flight[i] = false;
        self.inflight_total -= 1;
        self.done[i] = true;
        self.remaining -= 1;
        if let Some(s) = source {
            self.release_source(s);
        }
        self.remaining == 0
    }

    /// Aborts an in-flight `chunk` (source died / flow aborted).
    pub fn fail(&mut self, chunk: u32, source: Option<u32>) {
        let i = chunk as usize;
        if self.in_flight[i] {
            self.in_flight[i] = false;
            self.inflight_total -= 1;
        }
        if let Some(s) = source {
            self.release_source(s);
        }
        self.attempts[i] += 1;
    }

    fn release_source(&mut self, source: u32) {
        if let Some(n) = self.per_source.get_mut(&source) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.per_source.remove(&source);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

/// Pre-resolved `shuffle.*` counter handles (one atomic bump per use).
#[derive(Clone, Debug)]
pub struct FetchObs {
    /// Bytes fetched peer-to-peer (holders, siblings, local reads).
    pub bytes_p2p: Counter,
    /// Bytes fetched from the server after peer attempts failed.
    pub bytes_server_fallback: Counter,
    /// Chunks fetched from sibling seeds (true swarm transfers).
    pub chunks_swarmed: Counter,
    /// Coded sends planned: one per (map, reducer-group) pair.
    pub coded_sends: Counter,
}

impl FetchObs {
    /// Resolves the handles against `obs`.
    pub fn attach(obs: &Obs) -> Self {
        FetchObs {
            bytes_p2p: obs.counter("shuffle.bytes_p2p"),
            bytes_server_fallback: obs.counter("shuffle.bytes_server_fallback"),
            chunks_swarmed: obs.counter("shuffle.chunks_swarmed"),
            coded_sends: obs.counter("shuffle.coded_sends"),
        }
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_baseline() {
        let cfg = ShuffleConfig::default();
        assert_eq!(cfg.strategy, StrategyKind::Baseline);
        assert_eq!(cfg.build().kind(), StrategyKind::Baseline);
    }

    #[test]
    fn wire_tags_round_trip() {
        for k in [
            StrategyKind::Baseline,
            StrategyKind::Swarm,
            StrategyKind::Coded,
            StrategyKind::Legacy,
        ] {
            assert_eq!(StrategyKind::from_wire_tag(k.wire_tag()), Some(k));
        }
        assert_eq!(StrategyKind::from_wire_tag(99), None);
    }

    #[test]
    fn baseline_pick_matches_pre_strategy_rotation() {
        let s = Baseline;
        for attempts in 0..5u32 {
            for req in [0u32, 3, 17] {
                assert_eq!(
                    s.pick_source(4, attempts, req),
                    (attempts as usize + req as usize) % 4
                );
            }
        }
        assert!(s.chunking(1 << 20).is_none());
        assert_eq!(s.map_placement(2, 2), (2, 2));
    }

    #[test]
    fn chunk_plan_covers_every_byte() {
        for (total, cb) in [
            (0u64, 256u64),
            (1, 256),
            (256, 256),
            (257, 256),
            (1000, 300),
        ] {
            let p = ChunkPlan::new(total, cb);
            assert!(p.n_chunks >= 1);
            let sum: u64 = (0..p.n_chunks).map(|i| p.chunk_len(i)).sum();
            assert_eq!(sum, total, "total {total} chunk {cb}");
            for i in 0..p.n_chunks.saturating_sub(1) {
                assert_eq!(p.chunk_len(i), cb);
            }
        }
    }

    #[test]
    fn coded_placement_raises_replication_to_r() {
        let c = CodedStrategy { redundancy: 3 };
        assert_eq!(c.map_placement(2, 2), (3, 3));
        // r = 2 rides free on the default 2-way validation.
        let c2 = CodedStrategy { redundancy: 2 };
        assert_eq!(c2.map_placement(2, 2), (2, 2));
        assert_eq!(c2.map_placement(4, 3), (4, 3));
    }

    #[test]
    fn coded_group_shares_cover_partition() {
        // 5 reduces, r=2 -> groups {0,1} {2,3} {4}; shares ceil(P/gs).
        let c = CodedStrategy { redundancy: 2 };
        let holders = [7u32, 9, 11];
        let p = 1001u64;
        for (r, gs) in [(0usize, 2u64), (1, 2), (2, 2), (3, 2), (4, 1)] {
            let plan = c.plan_fetch(3, r, 5, p, &holders);
            assert_eq!(plan.bytes, p.div_ceil(gs), "reduce {r}");
            assert_eq!(plan.sources.len(), holders.len());
            // Sources are a rotation of the holder set.
            let mut sorted = plan.sources.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![7, 9, 11]);
        }
        assert_eq!(coded_groups(5, 2), 3);
        assert_eq!(coded_groups(4, 2), 2);
        assert_eq!(coded_groups(3, 4), 1);
    }

    #[test]
    fn coded_designates_different_holders_within_a_group() {
        let c = CodedStrategy { redundancy: 2 };
        let holders = [1u32, 2];
        let a = c.plan_fetch(0, 0, 4, 1000, &holders);
        let b = c.plan_fetch(0, 1, 4, 1000, &holders);
        assert_ne!(a.sources[0], b.sources[0]);
    }

    #[test]
    fn rarest_first_prefers_unseeded_chunks() {
        let plan = ChunkPlan::new(1000, 300); // 4 chunks
        let mut t = SwarmTransfer::new("f".into(), vec![1, 2], plan);
        let mut idx = SwarmIndex::default();
        // Chunk 0 has a sibling seed -> chunks 1..3 are rarer; tie
        // breaks to the lowest index.
        idx.add_seed("f", 0, 4, 5);
        assert_eq!(t.choose_chunk(&idx), Some(1));
        t.start(1, 1);
        assert_eq!(t.choose_chunk(&idx), Some(2));
        t.start(2, 2);
        assert!(!t.complete(1, Some(1)));
        assert!(!t.complete(2, Some(2)));
        // Only 0 and 3 left, equally seeded? 0 has an extra sibling.
        assert_eq!(t.choose_chunk(&idx), Some(3));
        t.start(3, 1);
        assert!(!t.complete(3, Some(1)));
        assert_eq!(t.choose_chunk(&idx), Some(0));
        t.start(0, 5);
        assert!(t.complete(0, Some(5)));
        assert_eq!(t.remaining(), 0);
    }

    #[test]
    fn swarm_sources_list_siblings_before_holders() {
        let plan = ChunkPlan::new(600, 300);
        let t = SwarmTransfer::new("f".into(), vec![1, 2, 3], plan);
        let mut idx = SwarmIndex::default();
        idx.add_seed("f", 0, 2, 9);
        let src = t.sources_for(0, &idx, 0);
        assert_eq!(src[0], SwarmSource::Sibling(9));
        assert_eq!(src.len(), 4);
        // All holders present exactly once.
        let holders: Vec<u32> = src[1..].iter().map(|s| s.cid()).collect();
        let mut sorted = holders.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3]);
    }

    #[test]
    fn per_source_cap_and_failure_release() {
        let plan = ChunkPlan::new(1200, 300);
        let mut t = SwarmTransfer::new("f".into(), vec![1], plan);
        assert!(t.source_has_room(1, 2));
        t.start(0, 1);
        t.start(1, 1);
        assert!(!t.source_has_room(1, 2));
        t.fail(0, Some(1));
        assert!(t.source_has_room(1, 2));
        assert_eq!(t.attempts(0), 1);
        assert_eq!(t.inflight(), 1);
    }

    #[test]
    fn index_drops_clients_and_files() {
        let mut idx = SwarmIndex::default();
        idx.add_seed("a", 0, 2, 5);
        idx.add_seed("a", 0, 2, 5); // dedup
        idx.add_seed("a", 1, 2, 6);
        assert_eq!(idx.seeds("a", 0), &[5]);
        idx.drop_client(5);
        assert!(idx.seeds("a", 0).is_empty());
        assert_eq!(idx.seeds("a", 1), &[6]);
        idx.drop_file("a");
        assert!(idx.seeds("a", 1).is_empty());
    }

    #[test]
    fn zero_byte_transfer_is_one_chunk() {
        let p = ChunkPlan::new(0, 256 << 10);
        assert_eq!(p.n_chunks, 1);
        assert_eq!(p.chunk_len(0), 0);
    }

    #[test]
    fn fetch_obs_counters_resolve() {
        let obs = Obs::new();
        let f = FetchObs::attach(&obs);
        f.bytes_p2p.add(10);
        f.chunks_swarmed.inc();
        assert_eq!(obs.counter("shuffle.bytes_p2p").get(), 10);
        assert_eq!(obs.counter("shuffle.chunks_swarmed").get(), 1);
    }
}
