//! Host reputation and adaptive replication (`vmr-trust`).
//!
//! The paper's server validates every workunit by fixed N-way
//! replication — at volunteer scale most of that compute is wasted on
//! hosts that have never returned a bad result. BOINC's production
//! answer (Anderson, "BOINC: A Platform for Volunteer Computing") is
//! *adaptive replication*: each host earns a reliability score through
//! validation history, and once it clears a trust threshold its results
//! are accepted singly, audited only by randomized spot-checks.
//!
//! This crate is the server-side mechanism, kept as a leaf below
//! `vmr-vcore` (host ids are raw `u32`, the `ClientId` newtype lives
//! upstream):
//!
//! - [`TrustLedger`] — per-host error-rate estimator fed by validation
//!   outcomes: exponential decay toward 0 on agreement, multiplicative
//!   punishment on mismatch/error, probation for new hosts. Every
//!   mutation is journaled as a `vmr-durable` [`StateChange`] in the
//!   dedicated `trust` WAL section, so trust state survives
//!   crash-replay bit-identically.
//! - [`ReplicationPolicy`] — maps a host's trust standing to a per-WU
//!   replication decision: full N-way for untrusted hosts, single
//!   replica for trusted ones, with probability-`p` spot-checks that
//!   keep full replication to audit a trusted host.
//! - Credit coupling — on an unreplicated validation the claimed credit
//!   is granted pro-rata to the host's reliability
//!   ([`TrustLedger::reliability`]); the scale travels in the
//!   `CreditGrantedScaled` change record applied by `vcore`'s ledger.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use vmr_durable::{Dec, Enc, Journal, StateChange, WireError};

/// Tunables of the reputation estimator and the replication policy.
///
/// Defaults keep the subsystem *disabled*: the engine then behaves
/// bit-identically to the fixed-quorum baseline (no ledger mutations,
/// no WAL records, no rng draws).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrustConfig {
    /// Master switch. Off = fixed-quorum behaviour, bit-identical to an
    /// engine built before this subsystem existed.
    pub enabled: bool,
    /// A host is trusted once its error-rate estimate falls to this
    /// value or below (and probation is served).
    pub trust_threshold: f64,
    /// Error-rate estimate assigned to a host before any observation
    /// (BOINC's mildly-distrusting prior).
    pub init_error_rate: f64,
    /// Multiplier applied to the estimate on each agreement
    /// (exponential decay toward 0).
    pub decay: f64,
    /// Punishment weight on mismatch/error: the estimate jumps to
    /// `1 - punish * (1 - err)` — reliability is multiplied by
    /// `punish`, so a single bad result from a trusted host instantly
    /// exceeds any reasonable threshold.
    pub punish: f64,
    /// Validated results a host must accumulate before it is eligible
    /// for trust (probation for new hosts).
    pub probation_results: u64,
    /// Probability that a grant to a trusted host keeps full
    /// replication anyway, as a randomized audit of its honesty.
    pub spot_check_rate: f64,
}

impl Default for TrustConfig {
    fn default() -> Self {
        TrustConfig {
            enabled: false,
            trust_threshold: 0.05,
            init_error_rate: 0.1,
            decay: 0.5,
            punish: 0.5,
            probation_results: 3,
            spot_check_rate: 0.05,
        }
    }
}

impl TrustConfig {
    /// An enabled config with the default estimator constants.
    pub fn enabled() -> Self {
        TrustConfig {
            enabled: true,
            ..TrustConfig::default()
        }
    }
}

/// A validation outcome fed to the estimator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The host's fingerprint matched the canonical output.
    Agree,
    /// The host returned a dissenting fingerprint.
    Mismatch,
    /// The host errored or missed its deadline.
    Error,
}

impl Outcome {
    /// Wire discriminant (stable, append-only).
    pub fn to_wire(self) -> u8 {
        match self {
            Outcome::Agree => 0,
            Outcome::Mismatch => 1,
            Outcome::Error => 2,
        }
    }

    /// Decode a wire discriminant.
    pub fn from_wire(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => Outcome::Agree,
            1 => Outcome::Mismatch,
            2 => Outcome::Error,
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// One host's reputation record.
#[derive(Clone, Debug, PartialEq)]
pub struct HostTrust {
    /// Current error-rate estimate in `[0, 1]`.
    pub error_rate: f64,
    /// Agreements observed (clears probation).
    pub validated: u64,
    /// Dissenting fingerprints observed.
    pub mismatches: u64,
    /// Client errors / deadline misses observed.
    pub errors: u64,
    /// Spot-checks drawn while the host was trusted.
    pub spot_checks: u64,
}

impl HostTrust {
    fn fresh(init_error_rate: f64) -> Self {
        HostTrust {
            error_rate: init_error_rate,
            validated: 0,
            mismatches: 0,
            errors: 0,
            spot_checks: 0,
        }
    }
}

/// Per-host reputation ledger, WAL-journaled like the credit ledger
/// and partitioned by `host_id % n` to match the server-core sharding.
/// Lookups route by id and aggregate views iterate in globally sorted
/// id order, so shard count never changes observable state.
#[derive(Debug)]
pub struct TrustLedger {
    cfg: TrustConfig,
    shards: Vec<HashMap<u32, HostTrust>>,
    /// WAL handle (disabled by default).
    journal: Journal,
}

impl TrustLedger {
    /// An empty single-shard ledger under `cfg`.
    pub fn new(cfg: TrustConfig) -> Self {
        TrustLedger::with_shards(cfg, 1)
    }

    /// An empty ledger under `cfg`, partitioned into `n` shards.
    pub fn with_shards(cfg: TrustConfig, n: usize) -> Self {
        let n = n.max(1);
        TrustLedger {
            cfg,
            shards: (0..n).map(|_| HashMap::new()).collect(),
            journal: Journal::disabled(),
        }
    }

    /// Number of host shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Repartitions the hosts into `n` shards (used after restoring a
    /// snapshot, which always decodes single-shard).
    pub fn reshard(&mut self, n: usize) {
        let n = n.max(1);
        if n == self.shards.len() {
            return;
        }
        let mut shards: Vec<HashMap<u32, HostTrust>> = (0..n).map(|_| HashMap::new()).collect();
        for shard in self.shards.drain(..) {
            for (h, t) in shard {
                shards[h as usize % n].insert(h, t);
            }
        }
        self.shards = shards;
    }

    #[inline]
    fn shard_of(&self, h: u32) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            h as usize % self.shards.len()
        }
    }

    /// The estimator/policy configuration.
    pub fn config(&self) -> &TrustConfig {
        &self.cfg
    }

    /// Attaches the engine's WAL handle; subsequent observations append
    /// change records. An *enabled* config is itself journaled first,
    /// so a crash before the first snapshot still replays the ledger
    /// from genesis with this run's estimator constants (a disabled
    /// config appends nothing — the WAL stays byte-identical to the
    /// fixed-quorum baseline).
    pub fn set_journal(&mut self, journal: Journal) {
        self.journal = journal;
        if self.cfg.enabled {
            self.journal.append(&StateChange::TrustConfigured {
                enabled: self.cfg.enabled,
                threshold_bits: self.cfg.trust_threshold.to_bits(),
                init_bits: self.cfg.init_error_rate.to_bits(),
                decay_bits: self.cfg.decay.to_bits(),
                punish_bits: self.cfg.punish.to_bits(),
                probation: self.cfg.probation_results,
                spot_bits: self.cfg.spot_check_rate.to_bits(),
            });
        }
    }

    /// The record of `h` (a fresh prior when never observed).
    pub fn host(&self, h: u32) -> HostTrust {
        self.shards[self.shard_of(h)]
            .get(&h)
            .cloned()
            .unwrap_or_else(|| HostTrust::fresh(self.cfg.init_error_rate))
    }

    /// Feeds one validation outcome into the estimator.
    pub fn observe(&mut self, h: u32, outcome: Outcome) {
        self.journal.append(&StateChange::TrustObserved {
            client: h,
            outcome: outcome.to_wire(),
        });
        self.raw_observe(h, outcome);
    }

    /// Records that a spot-check was drawn for trusted host `h`.
    pub fn record_spot_check(&mut self, h: u32) {
        self.journal
            .append(&StateChange::TrustSpotCheck { client: h });
        self.raw_spot_check(h);
    }

    fn entry(&mut self, h: u32) -> &mut HostTrust {
        let init = self.cfg.init_error_rate;
        let s = self.shard_of(h);
        self.shards[s]
            .entry(h)
            .or_insert_with(|| HostTrust::fresh(init))
    }

    fn raw_observe(&mut self, h: u32, outcome: Outcome) {
        let (decay, punish) = (self.cfg.decay, self.cfg.punish);
        let t = self.entry(h);
        match outcome {
            Outcome::Agree => {
                t.error_rate *= decay;
                t.validated += 1;
            }
            Outcome::Mismatch => {
                t.error_rate = 1.0 - punish * (1.0 - t.error_rate);
                t.mismatches += 1;
            }
            Outcome::Error => {
                t.error_rate = 1.0 - punish * (1.0 - t.error_rate);
                t.errors += 1;
            }
        }
    }

    fn raw_spot_check(&mut self, h: u32) {
        self.entry(h).spot_checks += 1;
    }

    /// Whether `h` has served probation and sits at or below the trust
    /// threshold. Pure trust math — callers gate on
    /// [`TrustConfig::enabled`].
    pub fn is_trusted(&self, h: u32) -> bool {
        match self.shards[self.shard_of(h)].get(&h) {
            Some(t) => {
                t.validated >= self.cfg.probation_results
                    && t.error_rate <= self.cfg.trust_threshold
            }
            None => false,
        }
    }

    /// Reliability of `h` (1 − error-rate estimate, clamped to [0, 1]) —
    /// the pro-rata credit scale for unreplicated results.
    pub fn reliability(&self, h: u32) -> f64 {
        (1.0 - self.host(h).error_rate).clamp(0.0, 1.0)
    }

    /// Number of currently-trusted hosts.
    pub fn trusted_count(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(HashMap::keys)
            .filter(|&&h| self.is_trusted(h))
            .count() as u64
    }

    /// Applies one replayed change record; `Ok(false)` when the record
    /// belongs to another subsystem.
    pub fn apply_change(&mut self, c: &StateChange) -> Result<bool, WireError> {
        match c {
            StateChange::TrustObserved { client, outcome } => {
                let o = Outcome::from_wire(*outcome)?;
                self.raw_observe(*client, o);
            }
            StateChange::TrustSpotCheck { client } => {
                self.raw_spot_check(*client);
            }
            StateChange::TrustConfigured {
                enabled,
                threshold_bits,
                init_bits,
                decay_bits,
                punish_bits,
                probation,
                spot_bits,
            } => {
                self.cfg = TrustConfig {
                    enabled: *enabled,
                    trust_threshold: f64::from_bits(*threshold_bits),
                    init_error_rate: f64::from_bits(*init_bits),
                    decay: f64::from_bits(*decay_bits),
                    punish: f64::from_bits(*punish_bits),
                    probation_results: *probation,
                    spot_check_rate: f64::from_bits(*spot_bits),
                };
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Canonical snapshot: the config constants first (so a recovered
    /// ledger replays with identical estimator math), then hosts sorted
    /// by id with the estimate as raw f64 bits — equal ledgers encode
    /// to byte-identical vectors.
    pub fn encode_state(&self) -> Vec<u8> {
        let mut ids: Vec<u32> = self
            .shards
            .iter()
            .flat_map(HashMap::keys)
            .copied()
            .collect();
        ids.sort_unstable();
        let mut e = Enc::with_capacity(64 + ids.len() * 44);
        e.bool(self.cfg.enabled);
        e.f64(self.cfg.trust_threshold);
        e.f64(self.cfg.init_error_rate);
        e.f64(self.cfg.decay);
        e.f64(self.cfg.punish);
        e.u64(self.cfg.probation_results);
        e.f64(self.cfg.spot_check_rate);
        e.u32(ids.len() as u32);
        for h in ids {
            let t = &self.shards[self.shard_of(h)][&h];
            e.u32(h);
            e.f64(t.error_rate);
            e.u64(t.validated);
            e.u64(t.mismatches);
            e.u64(t.errors);
            e.u64(t.spot_checks);
        }
        e.into_vec()
    }

    /// Rebuilds a ledger from an [`TrustLedger::encode_state`] snapshot
    /// section. The journal handle starts disabled.
    pub fn decode_state(b: &[u8]) -> Result<TrustLedger, WireError> {
        let mut d = Dec::new(b);
        let cfg = TrustConfig {
            enabled: d.bool()?,
            trust_threshold: d.f64()?,
            init_error_rate: d.f64()?,
            decay: d.f64()?,
            punish: d.f64()?,
            probation_results: d.u64()?,
            spot_check_rate: d.f64()?,
        };
        let n = d.u32()? as usize;
        let mut hosts = HashMap::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let h = d.u32()?;
            hosts.insert(
                h,
                HostTrust {
                    error_rate: d.f64()?,
                    validated: d.u64()?,
                    mismatches: d.u64()?,
                    errors: d.u64()?,
                    spot_checks: d.u64()?,
                },
            );
        }
        d.finish()?;
        Ok(TrustLedger {
            cfg,
            shards: vec![hosts],
            journal: Journal::disabled(),
        })
    }
}

/// What the scheduler should do with a work unit granted to a host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicationDecision {
    /// Keep the spec's full N-way replication (untrusted host, or
    /// probation not served).
    Full,
    /// Accept a single replica: drop the effective quorum to 1 and
    /// cancel the spare replicas.
    Single,
    /// The host is trusted but the spot-check draw fired: keep full
    /// replication as a randomized audit.
    SpotCheck,
}

/// Maps a host's trust standing to a per-WU replication decision.
#[derive(Clone, Debug, Default)]
pub struct ReplicationPolicy {
    cfg: TrustConfig,
}

impl ReplicationPolicy {
    /// A policy under `cfg`.
    pub fn new(cfg: TrustConfig) -> Self {
        ReplicationPolicy { cfg }
    }

    /// Decides replication for a grant to a host whose trust standing
    /// is `trusted`. `draw` is called with the spot-check probability
    /// only when the host is trusted, so untrusted grants consume no
    /// randomness (a determinism guarantee the disabled path relies
    /// on).
    pub fn decide(&self, trusted: bool, draw: impl FnOnce(f64) -> bool) -> ReplicationDecision {
        if !self.cfg.enabled || !trusted {
            return ReplicationDecision::Full;
        }
        if draw(self.cfg.spot_check_rate) {
            ReplicationDecision::SpotCheck
        } else {
            ReplicationDecision::Single
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmr_durable::{recover, DurabilityPlan};

    #[test]
    fn defaults_are_disabled_and_inert() {
        let cfg = TrustConfig::default();
        assert!(!cfg.enabled);
        let pol = ReplicationPolicy::new(cfg);
        // Disabled: always Full, never draws.
        assert_eq!(
            pol.decide(true, |_| panic!("must not draw")),
            ReplicationDecision::Full
        );
    }

    #[test]
    fn new_hosts_are_on_probation() {
        let l = TrustLedger::new(TrustConfig::enabled());
        assert!(!l.is_trusted(0));
        assert!((l.host(0).error_rate - 0.1).abs() < 1e-12);
        assert!((l.reliability(0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn agreements_decay_the_estimate_and_earn_trust() {
        let mut l = TrustLedger::new(TrustConfig::enabled());
        l.observe(7, Outcome::Agree);
        assert!(!l.is_trusted(7), "one agreement is still probation");
        l.observe(7, Outcome::Agree);
        l.observe(7, Outcome::Agree);
        // err = 0.1 * 0.5^3 = 0.0125 <= 0.05, probation (3) served.
        assert!(l.is_trusted(7));
        assert!((l.host(7).error_rate - 0.0125).abs() < 1e-12);
        assert_eq!(l.trusted_count(), 1);
    }

    #[test]
    fn one_mismatch_revokes_trust_instantly() {
        let mut l = TrustLedger::new(TrustConfig::enabled());
        for _ in 0..10 {
            l.observe(3, Outcome::Agree);
        }
        assert!(l.is_trusted(3));
        l.observe(3, Outcome::Mismatch);
        // err = 1 - 0.5*(1 - tiny) ≈ 0.5 — far above any threshold.
        assert!(!l.is_trusted(3));
        assert!(l.host(3).error_rate > 0.49);
        assert_eq!(l.host(3).mismatches, 1);
    }

    #[test]
    fn errors_punish_like_mismatches() {
        let mut l = TrustLedger::new(TrustConfig::enabled());
        l.observe(1, Outcome::Error);
        assert!(l.host(1).error_rate > 0.5);
        assert_eq!(l.host(1).errors, 1);
        // Recovery is possible but slow: decay must re-earn the ground.
        for _ in 0..10 {
            l.observe(1, Outcome::Agree);
        }
        assert!(l.is_trusted(1));
    }

    #[test]
    fn policy_spot_checks_trusted_hosts() {
        let pol = ReplicationPolicy::new(TrustConfig::enabled());
        assert_eq!(
            pol.decide(false, |_| panic!("untrusted must not draw")),
            ReplicationDecision::Full
        );
        assert_eq!(pol.decide(true, |_| true), ReplicationDecision::SpotCheck);
        assert_eq!(pol.decide(true, |_| false), ReplicationDecision::Single);
    }

    #[test]
    fn wal_replay_reproduces_ledger_bit_for_bit() {
        let j = Journal::new(&DurabilityPlan::new(0.0)).unwrap();
        let mut live = TrustLedger::new(TrustConfig::enabled());
        live.set_journal(j.clone());
        live.observe(0, Outcome::Agree);
        live.observe(2, Outcome::Mismatch);
        live.observe(0, Outcome::Agree);
        live.record_spot_check(0);
        live.observe(5, Outcome::Error);
        live.observe(0, Outcome::Agree);
        j.commit();
        let r = recover(&j.log_bytes()).unwrap();
        let mut replayed = TrustLedger::new(TrustConfig::enabled());
        for c in &r.tail {
            assert!(replayed.apply_change(c).unwrap(), "unhandled {c:?}");
        }
        assert_eq!(replayed.encode_state(), live.encode_state());
        assert_eq!(
            replayed.host(0).error_rate.to_bits(),
            live.host(0).error_rate.to_bits()
        );
        assert_eq!(replayed.host(0).spot_checks, 1);
    }

    #[test]
    fn snapshot_round_trip_is_canonical() {
        let mut l = TrustLedger::new(TrustConfig::enabled());
        l.observe(9, Outcome::Agree);
        l.observe(1, Outcome::Mismatch);
        l.record_spot_check(9);
        let enc = l.encode_state();
        let back = TrustLedger::decode_state(&enc).unwrap();
        assert_eq!(back.encode_state(), enc);
        assert!(back.config().enabled);
        assert_eq!(back.host(9).spot_checks, 1);
        assert_eq!(
            back.host(1).error_rate.to_bits(),
            l.host(1).error_rate.to_bits()
        );
    }

    #[test]
    fn sharded_ledger_is_bit_identical_to_single_shard() {
        let drive = |l: &mut TrustLedger| {
            for h in 0..24u32 {
                for _ in 0..(h % 5 + 1) {
                    l.observe(h, Outcome::Agree);
                }
                if h % 4 == 0 {
                    l.observe(h, Outcome::Mismatch);
                }
                if h % 7 == 0 {
                    l.record_spot_check(h);
                }
            }
        };
        let mut base = TrustLedger::new(TrustConfig::enabled());
        drive(&mut base);
        for n in [1usize, 2, 4, 8] {
            let mut l = TrustLedger::with_shards(TrustConfig::enabled(), n);
            assert_eq!(l.n_shards(), n);
            drive(&mut l);
            assert_eq!(
                l.encode_state(),
                base.encode_state(),
                "diverged at {n} shards"
            );
            assert_eq!(l.trusted_count(), base.trusted_count());
            for h in 0..24 {
                assert_eq!(l.is_trusted(h), base.is_trusted(h));
                assert_eq!(l.reliability(h).to_bits(), base.reliability(h).to_bits());
            }
            let mut back = TrustLedger::decode_state(&l.encode_state()).unwrap();
            assert_eq!(back.n_shards(), 1);
            back.reshard(n);
            assert_eq!(back.n_shards(), n);
            assert_eq!(back.encode_state(), base.encode_state());
        }
    }

    #[test]
    fn outcome_wire_round_trips() {
        for o in [Outcome::Agree, Outcome::Mismatch, Outcome::Error] {
            assert_eq!(Outcome::from_wire(o.to_wire()).unwrap(), o);
        }
        assert!(Outcome::from_wire(9).is_err());
    }
}
