//! Quickstart: run a word-count MapReduce job three ways and check they
//! all agree.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! 1. **Oracle** — sequential in-process run.
//! 2. **Real cluster** — pull-model volunteers over loopback TCP with
//!    replication-2 quorum validation (the BOINC-MR protocol for real).
//! 3. **Simulated volunteer cloud** — the paper's testbed in the
//!    deterministic simulator, reporting phase makespans.

use std::sync::Arc;
use vmr_core::{run_experiment, ExperimentConfig, MrMode};
use vmr_mapreduce::apps::WordCount;
use vmr_mapreduce::{run_sequential, CorpusGen, CorpusSpec, JobSpec};
use vmr_rtnet::{run_cluster, ClusterConfig};

fn main() {
    // ----- a small synthetic corpus (the paper used a 1 GB text file;
    // 2 MB keeps the quickstart instant) -----
    let mut gen = CorpusGen::new(&CorpusSpec::default());
    let data = Arc::new(gen.generate(2 << 20));
    println!("corpus: {} bytes of Zipf text", data.len());

    // ----- 1. sequential oracle -----
    let oracle = run_sequential(&WordCount, &[&data[..]]);
    let total_tokens: u64 = oracle.values().sum();
    println!(
        "oracle: {} distinct words, {} tokens",
        oracle.len(),
        total_tokens
    );

    // ----- 2. real pull-model TCP cluster -----
    let cfg = ClusterConfig::new(6, JobSpec::new("wc", 8, 3));
    let report = run_cluster(Arc::new(WordCount), data.clone(), &cfg);
    assert_eq!(report.output, oracle, "TCP cluster must match the oracle");
    println!(
        "real TCP cluster: OK ({} peer fetches, {} local reads, {} fallbacks, {} map execs)",
        report
            .stats
            .peer_fetches
            .load(std::sync::atomic::Ordering::Relaxed),
        report
            .stats
            .local_reads
            .load(std::sync::atomic::Ordering::Relaxed),
        report
            .stats
            .fallback_fetches
            .load(std::sync::atomic::Ordering::Relaxed),
        report
            .stats
            .map_execs
            .load(std::sync::atomic::Ordering::Relaxed),
    );

    // ----- 3. simulated volunteer cloud (one Table I style cell) -----
    let mut sim = ExperimentConfig::table1(10, 10, 2, MrMode::InterClient);
    sim.input_bytes = 256 << 20; // 256 MB keeps the demo snappy
    let out = run_experiment(&sim).expect("valid experiment config");
    let r = &out.reports[0];
    println!(
        "simulated BOINC-MR (10 nodes, 10 maps, 2 reducers, 256 MB):\n  \
         map {:.0} s | reduce {:.0} s | total {:.0} s | {} scheduler RPCs, {} empty replies",
        r.map_s, r.reduce_s, r.total_s, out.stats.rpcs, out.stats.empty_replies
    );
    println!("quickstart complete: all three runtimes agree on the job");
}
