//! Two more MapReduce workloads through the real TCP cluster:
//! distributed grep over a synthetic access log, and per-URL byte
//! aggregation — the classic companions to word count, exercising the
//! line-oriented input path and non-unit values.
//!
//! ```text
//! cargo run --release --example grep_logs
//! ```

use std::sync::Arc;
use vmr_mapreduce::apps::{pi_estimate, pi_input, synth_log, DistGrep, MonteCarloPi, UrlVisits};
use vmr_mapreduce::{run_sequential, JobSpec};
use vmr_rtnet::{run_cluster, ClusterConfig};

fn main() {
    let log = Arc::new(synth_log(1 << 20, 400, 7));
    println!("synthetic access log: {} bytes", log.len());

    // ----- distributed grep -----
    let app = Arc::new(DistGrep::new("/page/3"));
    let cfg = ClusterConfig::new(5, JobSpec::new("grep", 6, 2));
    let report = run_cluster(app.clone(), log.clone(), &cfg);
    let oracle = run_sequential(app.as_ref(), &[&log[..]]);
    assert_eq!(report.output, oracle);
    let matches: u64 = report.output.values().sum();
    println!(
        "grep '/page/3': {} distinct matching lines, {} total occurrences — TCP cluster == oracle",
        report.output.len(),
        matches
    );

    // ----- per-URL byte aggregation -----
    let app = Arc::new(UrlVisits);
    let cfg = ClusterConfig::new(5, JobSpec::new("uv", 4, 2));
    let report = run_cluster(app.clone(), log.clone(), &cfg);
    let oracle = run_sequential(app.as_ref(), &[&log[..]]);
    assert_eq!(report.output, oracle);
    let mut top: Vec<(&String, &u64)> = report.output.iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1));
    println!("\ntop URLs by bytes served (validated by replication-2 quorum):");
    for (url, bytes) in top.iter().take(5) {
        println!("  {url:<12} {bytes:>12} bytes");
    }
    println!(
        "\n{} URLs aggregated — TCP cluster == oracle",
        report.output.len()
    );

    // ----- Monte-Carlo π: classic volunteer computing as MapReduce -----
    let input = Arc::new(pi_input(24, 100_000, 1));
    let cfg = ClusterConfig::new(5, JobSpec::new("pi", 6, 1));
    let report = run_cluster(Arc::new(MonteCarloPi), input.clone(), &cfg);
    let oracle = run_sequential(&MonteCarloPi, &[&input[..]]);
    assert_eq!(report.output, oracle);
    let pi = pi_estimate(&report.output).unwrap();
    println!(
        "\nMonte-Carlo π over the TCP cluster: {pi:.5} from {} samples \
         (replication-2 quorum agreed bit-for-bit)",
        report.output["total"]
    );
}
