//! Beyond the cluster: what §III.D is about. Volunteers behind NATs and
//! firewalls, with the tiered traversal the paper proposes (direct →
//! connection reversal → hole punching → relay), byzantine volunteers,
//! and node churn — the "insecure, unreliable VC environment".
//!
//! ```text
//! cargo run --release --example internet_volunteers
//! ```

use vmr_core::{run_experiment, ExperimentConfig, MrMode};
use vmr_desim::SimDuration;
use vmr_netsim::{NatMix, TraversalPolicy};
use vmr_vcore::{ClientId, FaultPlan};

fn main() {
    let base = || {
        let mut c = ExperimentConfig::table1(20, 16, 4, MrMode::InterClient);
        c.input_bytes = 512 << 20;
        c
    };

    // ----- 1. The testbed fiction: everyone publicly reachable -----
    let lan = run_experiment(&base()).expect("valid experiment config");
    println!(
        "all-open volunteers      : total {:>6.0} s, fallbacks {}",
        lan.reports[0].total_s, lan.stats.server_fallbacks
    );

    // ----- 2. Realistic NAT mix, prototype's direct-only connects -----
    let mut cfg = base();
    cfg.nat_mix = Some(NatMix::internet_2011());
    cfg.traversal = TraversalPolicy::direct_only();
    let naive = run_experiment(&cfg).expect("valid experiment config");
    println!(
        "NAT mix, direct-only     : total {:>6.0} s, fallbacks {} (peer transfers mostly impossible)",
        naive.reports[0].total_s, naive.stats.server_fallbacks
    );

    // ----- 3. Same mix with the paper's tiered traversal -----
    let mut cfg = base();
    cfg.nat_mix = Some(NatMix::internet_2011());
    cfg.traversal = TraversalPolicy::default();
    let tiered = run_experiment(&cfg).expect("valid experiment config");
    let t = &tiered.stats.traversal;
    println!(
        "NAT mix, tiered traversal: total {:>6.0} s, fallbacks {}",
        tiered.reports[0].total_s, tiered.stats.server_fallbacks
    );
    println!(
        "  traversal outcomes: direct {} | reversal {} | hole-punch {} | relay {} (success rate {:.0}%)",
        t.direct,
        t.reversal,
        t.hole_punch,
        t.relay,
        t.success_rate() * 100.0
    );

    // ----- 4. Byzantine volunteers + churn under replication-2 -----
    let mut cfg = base();
    cfg.delay_bound_s = 900.0; // tight deadline so churn recovery is visible
    cfg.fault = FaultPlan {
        byzantine: vec![ClientId(3), ClientId(11)],
        corruption_prob: 0.8,
        peer_transfer_failure_prob: 0.05,
        task_error_prob: 0.02,
        dropouts: vec![(ClientId(7), SimDuration::from_secs(200))],
        ..FaultPlan::default()
    };
    let hostile = run_experiment(&cfg).expect("valid experiment config");
    println!(
        "hostile (2 byzantine, churn): done={} total {:>6.0} s, peer failures {}, fallbacks {}",
        hostile.all_done,
        hostile.reports[0].total_s,
        hostile.stats.peer_failures,
        hostile.stats.server_fallbacks
    );
    println!(
        "\nReplication+quorum absorbs byzantine outputs; retries and the \
         server fall-back absorb churn — the job still completes."
    );
}
