//! Volunteer cloud scenario: the paper's full 1 GB word-count run on a
//! simulated 20-node testbed — both systems of Table I side by side,
//! plus the per-node timeline that exposes the backoff straggler.
//!
//! ```text
//! cargo run --release --example volunteer_cloud
//! ```

use vmr_core::{run_experiment, ExperimentConfig, MrMode};

fn main() {
    println!("=== 1 GB word count, 20 volunteers, 20 map WUs, 5 reduce WUs ===\n");
    for mode in [MrMode::ServerRelay, MrMode::InterClient] {
        let mut cfg = ExperimentConfig::table1(20, 20, 5, mode);
        cfg.record_timeline = true;
        let out = run_experiment(&cfg).expect("valid experiment config");
        assert!(out.all_done);
        let r = &out.reports[0];
        println!("--- {mode} ---");
        println!(
            "map {:>5.0} s   reduce {:>5.0} s   total {:>6.0} s",
            r.map_s, r.reduce_s, r.total_s
        );
        if let (Some(m), Some(t)) = (r.map_no_slowest_s, r.total_no_slowest_s) {
            println!("without the slowest node: map {m:.0} s, total {t:.0} s");
        }
        println!(
            "scheduler RPCs {:>5}   empty replies {:>4}   mean report delay {:>5.1} s",
            out.stats.rpcs,
            out.stats.empty_replies,
            out.stats.report_delay.mean()
        );
        println!(
            "bytes through server {:.2} GB   peer-transfer setups {}",
            out.stats.bytes_via_server / 1e9,
            out.stats.traversal.successes(),
        );
        // A condensed per-node view of the run (d=download, e=exec,
        // u=upload; lanes are volunteers).
        println!("\nper-node activity (first 8 lanes):");
        let art = out.timeline.render_ascii(100);
        for line in art.lines().filter(|l| l.starts_with("node-")).take(8) {
            println!("  {line}");
        }
        println!();
    }
    println!(
        "Shape check (paper, Table I): BOINC-MR's reduce phase is the fastest \
         because reducers pull map outputs from the volunteers directly \
         instead of hammering the project server."
    );
}
