//! A chained MapReduce workflow on the volunteer cloud (§II: "many
//! applications can be broken down into sequences of MapReduce jobs").
//!
//! Pipeline: stage 1 word-counts a 512 MB corpus; stage 2 aggregates
//! the (small) per-word counts into a frequency histogram — a classic
//! two-stage analytics chain.
//!
//! ```text
//! cargo run --release --example workflow
//! ```

use vmr_core::{MrJobConfig, MrMode, Stage, Workflow};
use vmr_desim::SimTime;
use vmr_netsim::HostLink;
use vmr_vcore::{Engine, HostProfile, ProjectConfig};

fn main() {
    let mut eng = Engine::builder(0xF10)
        .config(ProjectConfig::default())
        .clients((0..12).map(|_| {
            (
                HostProfile::pc3001(),
                HostLink::symmetric_mbit(100.0, 0.000_5),
            )
        }))
        .build();

    let mut stage1 = MrJobConfig::paper_wordcount(12, 4, MrMode::InterClient);
    stage1.input_bytes = 512 << 20;
    let mut stage2 = MrJobConfig::paper_wordcount(4, 1, MrMode::InterClient);
    stage2.input_bytes = 0; // filled from stage 1's output

    let mut wf = Workflow::new(vec![
        Stage {
            cfg: stage1,
            input_scale: 1.0,
        },
        Stage {
            cfg: stage2,
            input_scale: 1.0,
        },
    ]);
    wf.start(&mut eng);
    eng.run_until(&mut wf, SimTime::from_secs(200_000), |e| {
        e.db.all_wus_terminal()
    });

    assert!(wf.succeeded(), "workflow must complete");
    println!(
        "two-stage workflow complete at t = {:.0} s\n",
        eng.now().as_secs_f64()
    );
    for (i, job) in wf.policy().tracker.jobs.iter().enumerate() {
        println!(
            "stage {}: input {:>9} bytes | map {:>5.0} s | reduce {:>5.0} s | total {:>5.0} s",
            i + 1,
            job.cfg.input_bytes,
            job.map_time().unwrap_or(f64::NAN),
            job.reduce_time().unwrap_or(f64::NAN),
            job.total_time().unwrap_or(f64::NAN),
        );
    }
    let jobs = &wf.policy().tracker.jobs;
    let gap = jobs[1]
        .first_map_assign
        .unwrap()
        .saturating_since(jobs[0].done_at.unwrap());
    println!(
        "\nstage-2 start lag after stage-1 completion: {:.0} s \
         (validation + feeder pass + backoff wake — the same §IV.B gap \
         that separates map from reduce)",
        gap.as_secs_f64()
    );
    println!(
        "credit leaderboard (top 3): {:?}",
        eng.credit
            .leaderboard()
            .into_iter()
            .take(3)
            .map(|(c, g)| format!("{c}: {g:.0}"))
            .collect::<Vec<_>>()
    );
}
